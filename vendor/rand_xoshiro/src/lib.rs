//! Offline stand-in for [rand_xoshiro](https://crates.io/crates/rand_xoshiro).
//!
//! Implements the actual xoshiro256++ algorithm (Blackman & Vigna, public
//! domain reference implementation) with SplitMix64 seed expansion, exactly
//! as the upstream crate does, so the statistical quality of every generated
//! graph matches what the real dependency would produce.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// SplitMix64 step used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator: 256 bits of state, period `2^256 - 1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Advances the stream by `2^128` steps, yielding an independent
    /// sub-stream (the standard xoshiro jump polynomial).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_9759_5CC1_1E14,
            0x3982_3EDC_95DA_C48D,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if j & (1 << b) != 0 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point; fall back to seeding from 0.
            return Self::seed_from_u64(0);
        }
        Xoshiro256PlusPlus { s }
    }

    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Xoshiro256PlusPlus { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the public-domain xoshiro256++ implementation:
    /// state {1, 2, 3, 4} produces these first outputs.
    #[test]
    fn matches_reference_stream() {
        let mut rng = Xoshiro256PlusPlus { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut c = Xoshiro256PlusPlus::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn jump_decorrelates_streams() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut b = a.clone();
        b.jump();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
