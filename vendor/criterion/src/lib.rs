//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Accepts the same bench sources (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `bench_with_input`, `BenchmarkId`, `black_box`) and runs
//! a lightweight measure loop: warm up once, then repeat each benchmark until
//! the sample budget or the measurement time is exhausted, reporting min /
//! mean / max per benchmark on stdout. There is no statistical analysis and
//! no report generation, but timings are real and the binary honours
//! `--test` (run each benchmark exactly once) so `cargo test --benches`
//! stays fast.

#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier for `function` at `parameter` (e.g. `cluster/16`).
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: function.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function, parameter: None }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{p}", self.function),
            None => write!(f, "{}", self.function),
        }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Times `routine`, collecting up to the configured sample count within
    /// the measurement budget (a single call in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget_start = Instant::now();
        let samples = if self.test_mode { 1 } else { self.sample_size };
        for _ in 0..samples {
            let started = Instant::now();
            black_box(routine());
            self.samples.push(started.elapsed());
            if !self.test_mode && budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Settings shared by a group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; the shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, id: String, mut f: F) {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        self.criterion.report(&id, &samples);
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.run(id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = format!("{}/{}", self.name, id.into());
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries with `--bench`; `--test` asks for a
        // single-iteration smoke run of every benchmark.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into().to_string();
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        };
        group.run(id, f);
        self
    }

    fn report(&mut self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let min = samples.iter().min().expect("non-empty samples");
        let max = samples.iter().max().expect("non-empty samples");
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<48} [{:>12.3?} {:>12.3?} {:>12.3?}] ({} samples)",
            min,
            mean,
            max,
            samples.len()
        );
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(10));
        let mut runs = 0;
        group.bench_function("f", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("g2", 7), &21, |b, &x| b.iter(|| black_box(x * 2)));
        group.finish();
        assert_eq!(runs, 1); // test mode: exactly one iteration
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
