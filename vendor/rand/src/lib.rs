//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Provides the trait surface the CL-DIAM workspace uses — [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`) and [`SeedableRng`] — with
//! the same signatures as rand 0.8, so the real crate can be swapped back in
//! without source changes. Concrete generators live in the sibling
//! `rand_xoshiro` shim.
//!
//! Integer `gen_range` uses unbiased rejection sampling (Lemire's method) and
//! is fully deterministic given the underlying stream; it is *not* guaranteed
//! to be bit-identical to upstream rand, which is irrelevant here because
//! every seed-derived expectation in this workspace was produced with this
//! implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s (and the derived `u32`s).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` (expanded via SplitMix64 in the
    /// concrete implementations).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, bound)` via Lemire's multiply-shift rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range: every draw is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (exclusive `a..b` or inclusive `a..=b`).
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module mirroring `rand::rngs` (unused, kept for parity).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=7);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn f64_gen_is_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
