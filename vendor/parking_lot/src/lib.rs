//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync` primitives behind parking_lot's API (locks return guards
//! directly instead of `Result`s; poisoning is ignored, matching parking_lot
//! semantics).

#![forbid(unsafe_code)]

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_detects_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
