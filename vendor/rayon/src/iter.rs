//! Parallel iterators over splittable sources.
//!
//! A [`ParIter`] wraps a [`Source`]: a splittable description of the input
//! (an index range, a slice, an owned vector, …) plus a stack of element-wise
//! adapters (`map`, `filter`, `flat_map_iter`, …) whose closures are shared
//! across threads behind `Arc`s. Terminal operations split the source into
//! contiguous index chunks, execute each chunk's sequential pipeline on the
//! current thread pool, and recombine the per-chunk results **in chunk
//! order**.
//!
//! # Determinism contract
//!
//! Chunk boundaries depend on the pool size, so the guarantee every consumer
//! in this workspace relies on is *chunk-order recombination*:
//!
//! * order-preserving terminals (`collect`, and any adapter stack above them)
//!   concatenate chunk outputs in input order, which is invariant under the
//!   chunking — the result is byte-identical to a sequential run at **any**
//!   thread count;
//! * reducing terminals (`reduce`, `sum`, `max`, `min`, `any`, `count`) fold
//!   chunk results left-to-right. They produce thread-count-independent
//!   results whenever the combining operation is associative with the given
//!   identity — true for all integer sums, min/max, and boolean folds used in
//!   this workspace. (Floating-point sums would *not* qualify; none occur.)

use std::sync::{Arc, Mutex};

use crate::pool::{current_pool, CHUNKS_PER_THREAD};

/// A splittable, sendable description of a sequence.
///
/// `len` counts *input* positions (adapters like `filter` keep the input
/// length; their chunk outputs simply shrink), `split_at` cuts the sequence at
/// an input position, and `into_seq` yields the items of one chunk
/// sequentially.
#[allow(clippy::len_without_is_empty)]
pub trait Source: Sized + Send {
    /// Items produced by this source.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type SeqIter: Iterator<Item = Self::Item>;

    /// Number of input positions left.
    fn len(&self) -> usize;
    /// Splits into the first `mid` input positions and the rest.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Consumes this chunk into a sequential iterator.
    fn into_seq(self) -> Self::SeqIter;
}

/// Splits `source` into `chunks` contiguous pieces of near-equal length.
///
/// Splitting recurses by halving rather than slicing pieces off the front:
/// for sources whose `split_at` moves data (an owned `Vec` pays `split_off`),
/// this costs `O(n log chunks)` moves instead of `O(n · chunks)`.
fn split_even<S: Source>(source: S, chunks: usize) -> Vec<S> {
    fn split_rec<S: Source>(source: S, chunks: usize, out: &mut Vec<S>) {
        if chunks <= 1 {
            out.push(source);
            return;
        }
        let left_chunks = chunks / 2;
        let right_chunks = chunks - left_chunks;
        // Proportional cut keeps the final piece lengths within one of each
        // other, matching the fully sequential splitting this replaces.
        let take = source.len() * left_chunks / chunks;
        let (head, tail) = source.split_at(take);
        split_rec(head, left_chunks, out);
        split_rec(tail, right_chunks, out);
    }
    let mut pieces = Vec::with_capacity(chunks);
    split_rec(source, chunks, &mut pieces);
    pieces
}

/// Executes `run` over the chunks of `source` on the current pool and returns
/// the per-chunk results in chunk order.
pub(crate) fn drive<S, R>(source: S, min_len: usize, run: impl Fn(S::SeqIter) -> R + Sync) -> Vec<R>
where
    S: Source,
    R: Send,
{
    let len = source.len();
    let pool = current_pool();
    let threads = pool.threads().max(1);
    let chunks = if threads == 1 {
        1
    } else {
        (threads * CHUNKS_PER_THREAD).min(len / min_len.max(1)).max(1)
    };
    if chunks <= 1 {
        return vec![run(source.into_seq())];
    }
    let pieces: Vec<Mutex<Option<S>>> =
        split_even(source, chunks).into_iter().map(|piece| Mutex::new(Some(piece))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..pieces.len()).map(|_| Mutex::new(None)).collect();
    let task = |index: usize| {
        let piece = pieces[index]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("chunk claimed twice");
        let out = run(piece.into_seq());
        *results[index].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
    };
    pool.run_batch(pieces.len(), &task);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("chunk produced no result")
        })
        .collect()
}

/// A parallel iterator: a splittable [`Source`] plus a minimum chunk length
/// hint (see [`ParIter::with_min_len`]).
pub struct ParIter<S: Source> {
    source: S,
    min_len: usize,
}

impl<S: Source> ParIter<S> {
    pub(crate) fn new(source: S) -> Self {
        ParIter { source, min_len: 1 }
    }

    /// Maps each item through `f`.
    pub fn map<O, F>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        O: Send,
        F: Fn(S::Item) -> O + Send + Sync,
    {
        let source = MapSource { base: self.source, f: Arc::new(f) };
        ParIter { source, min_len: self.min_len }
    }

    /// Keeps items matching `f`.
    pub fn filter<F>(self, f: F) -> ParIter<FilterSource<S, F>>
    where
        F: Fn(&S::Item) -> bool + Send + Sync,
    {
        let source = FilterSource { base: self.source, f: Arc::new(f) };
        ParIter { source, min_len: self.min_len }
    }

    /// Filter and map in one pass.
    pub fn filter_map<O, F>(self, f: F) -> ParIter<FilterMapSource<S, F>>
    where
        O: Send,
        F: Fn(S::Item) -> Option<O> + Send + Sync,
    {
        let source = FilterMapSource { base: self.source, f: Arc::new(f) };
        ParIter { source, min_len: self.min_len }
    }

    /// Maps each item to a collection and flattens, preserving input order.
    pub fn flat_map<O, F>(self, f: F) -> ParIter<FlatMapSource<S, O, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(S::Item) -> O + Send + Sync,
    {
        let source = FlatMapSource {
            base: self.source,
            f: Arc::new(f),
            _produces: std::marker::PhantomData,
        };
        ParIter { source, min_len: self.min_len }
    }

    /// rayon's `flat_map_iter`: like [`flat_map`](Self::flat_map), with the
    /// produced iterators consumed sequentially inside each chunk.
    pub fn flat_map_iter<O, F>(self, f: F) -> ParIter<FlatMapSource<S, O, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(S::Item) -> O + Send + Sync,
    {
        self.flat_map(f)
    }

    /// Pairs each item with its global input index.
    pub fn enumerate(self) -> ParIter<EnumerateSource<S>> {
        let source = EnumerateSource { base: self.source, offset: 0 };
        ParIter { source, min_len: self.min_len }
    }

    /// Zips with another parallel iterator, truncating to the shorter side.
    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> ParIter<ZipSource<S, Z::Src>> {
        let source = ZipSource { a: self.source, b: other.into_par_iter().source };
        ParIter { source, min_len: self.min_len }
    }

    /// Sets the minimum number of input positions per chunk. Larger values
    /// reduce scheduling overhead for cheap per-item work.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min);
        self
    }

    /// rayon's `reduce`: folds every chunk from `identity()` with `op`, then
    /// folds the chunk results in chunk order. Thread-count-independent when
    /// `op` is associative and `identity()` is its identity.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> S::Item
    where
        ID: Fn() -> S::Item + Send + Sync,
        OP: Fn(S::Item, S::Item) -> S::Item + Send + Sync,
    {
        drive(self.source, self.min_len, |iter| iter.fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Sums all items.
    pub fn sum<Out>(self) -> Out
    where
        Out: std::iter::Sum<S::Item> + std::iter::Sum<Out> + Send,
    {
        drive(self.source, self.min_len, |iter| iter.sum::<Out>()).into_iter().sum()
    }

    /// Largest item (ties resolved towards the latest, matching
    /// `Iterator::max`).
    pub fn max(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        drive(self.source, self.min_len, |iter| iter.max()).into_iter().flatten().reduce(|a, b| {
            if b >= a {
                b
            } else {
                a
            }
        })
    }

    /// Smallest item (ties resolved towards the earliest, matching
    /// `Iterator::min`).
    pub fn min(self) -> Option<S::Item>
    where
        S::Item: Ord,
    {
        drive(self.source, self.min_len, |iter| iter.min()).into_iter().flatten().reduce(|a, b| {
            if b < a {
                b
            } else {
                a
            }
        })
    }

    /// `true` if any item satisfies `pred` (all chunks are evaluated; no
    /// cross-chunk short-circuiting).
    pub fn any<P>(self, pred: P) -> bool
    where
        P: Fn(S::Item) -> bool + Send + Sync,
    {
        drive(self.source, self.min_len, |mut iter| iter.any(&pred)).into_iter().any(|found| found)
    }

    /// `true` if every item satisfies `pred`.
    pub fn all<P>(self, pred: P) -> bool
    where
        P: Fn(S::Item) -> bool + Send + Sync,
    {
        drive(self.source, self.min_len, |mut iter| iter.all(&pred)).into_iter().all(|ok| ok)
    }

    /// Number of items produced.
    pub fn count(self) -> usize {
        drive(self.source, self.min_len, |iter| iter.count()).into_iter().sum()
    }

    /// Runs `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Send + Sync,
    {
        drive(self.source, self.min_len, |iter| iter.for_each(&f));
    }

    /// Collects into `C`, preserving input order exactly.
    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<S::Item>,
    {
        C::from_par_iter(self)
    }
}

impl<'a, T, S> ParIter<S>
where
    T: 'a + Copy + Send + Sync,
    S: Source<Item = &'a T>,
{
    /// Copies borrowed items.
    pub fn copied(self) -> ParIter<CopiedSource<S>> {
        let source = CopiedSource { base: self.source };
        ParIter { source, min_len: self.min_len }
    }
}

impl<'a, T, S> ParIter<S>
where
    T: 'a + Clone + Send + Sync,
    S: Source<Item = &'a T>,
{
    /// Clones borrowed items.
    pub fn cloned(self) -> ParIter<ClonedSource<S>> {
        let source = ClonedSource { base: self.source };
        ParIter { source, min_len: self.min_len }
    }
}

/// Collection types buildable from a parallel iterator.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection, preserving the iterator's input order.
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<S: Source<Item = T>>(iter: ParIter<S>) -> Vec<T> {
        let mut parts = drive(iter.source, iter.min_len, |chunk| chunk.collect::<Vec<T>>());
        if parts.len() == 1 {
            return parts.pop().expect("one chunk present");
        }
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for part in parts {
            out.extend(part);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Consuming conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The underlying splittable source.
    type Src: Source<Item = Self::Item>;
    /// Items yielded.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Src>;
}

impl<S: Source> IntoParallelIterator for ParIter<S> {
    type Src = S;
    type Item = S::Item;

    fn into_par_iter(self) -> ParIter<S> {
        self
    }
}

/// Borrowing conversion (`par_iter`), mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The underlying splittable source.
    type Src: Source<Item = Self::Item>;
    /// Items yielded (references into `self`).
    type Item: Send + 'data;

    /// Iterates `&self` in parallel.
    fn par_iter(&'data self) -> ParIter<Self::Src>;
}

impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
where
    C: 'data,
    &'data C: IntoParallelIterator,
    <&'data C as IntoParallelIterator>::Item: 'data,
{
    type Src = <&'data C as IntoParallelIterator>::Src;
    type Item = <&'data C as IntoParallelIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Src> {
        self.into_par_iter()
    }
}

/// Mutable borrowing conversion (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'data> {
    /// The underlying splittable source.
    type Src: Source<Item = Self::Item>;
    /// Items yielded (mutable references into `self`).
    type Item: Send + 'data;

    /// Iterates `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Src>;
}

impl<'data, C: ?Sized> IntoParallelRefMutIterator<'data> for C
where
    C: 'data,
    &'data mut C: IntoParallelIterator,
    <&'data mut C as IntoParallelIterator>::Item: 'data,
{
    type Src = <&'data mut C as IntoParallelIterator>::Src;
    type Item = <&'data mut C as IntoParallelIterator>::Item;

    fn par_iter_mut(&'data mut self) -> ParIter<Self::Src> {
        self.into_par_iter()
    }
}

// ---------------------------------------------------------------------------
// Base sources
// ---------------------------------------------------------------------------

/// Integer range endpoints usable as parallel sources.
pub trait RangeIndex: Copy + Send {
    /// `self + offset`, without overflow in valid splits.
    fn offset(self, offset: usize) -> Self;
    /// `other - self` as a usize length.
    fn distance(self, other: Self) -> usize;
}

macro_rules! range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            fn offset(self, offset: usize) -> Self {
                self + offset as $t
            }
            fn distance(self, other: Self) -> usize {
                other.saturating_sub(self) as usize
            }
        }
    )*};
}
range_index!(u32, u64, usize);

/// Source over an integer range.
pub struct RangeSource<T> {
    start: T,
    end: T,
}

impl<T> Source for RangeSource<T>
where
    T: RangeIndex,
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type SeqIter = std::ops::Range<T>;

    fn len(&self) -> usize {
        self.start.distance(self.end)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = self.start.offset(mid);
        (RangeSource { start: self.start, end: cut }, RangeSource { start: cut, end: self.end })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.start..self.end
    }
}

macro_rules! range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Src = RangeSource<$t>;
            type Item = $t;

            fn into_par_iter(self) -> ParIter<RangeSource<$t>> {
                ParIter::new(RangeSource { start: self.start, end: self.end })
            }
        }
    )*};
}
range_into_par!(u32, u64, usize);

/// Source over a shared slice.
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Source for SliceSource<'a, T> {
    type Item = &'a T;
    type SeqIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at(mid);
        (SliceSource { slice: head }, SliceSource { slice: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter()
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Src = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        ParIter::new(SliceSource { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Src = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        self.as_slice().into_par_iter()
    }
}

impl<'a, T: Sync, const N: usize> IntoParallelIterator for &'a [T; N] {
    type Src = SliceSource<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> ParIter<SliceSource<'a, T>> {
        self.as_slice().into_par_iter()
    }
}

/// Source over a mutable slice.
pub struct SliceMutSource<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Source for SliceMutSource<'a, T> {
    type Item = &'a mut T;
    type SeqIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.slice.split_at_mut(mid);
        (SliceMutSource { slice: head }, SliceMutSource { slice: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.iter_mut()
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Src = SliceMutSource<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<SliceMutSource<'a, T>> {
        ParIter::new(SliceMutSource { slice: self })
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut Vec<T> {
    type Src = SliceMutSource<'a, T>;
    type Item = &'a mut T;

    fn into_par_iter(self) -> ParIter<SliceMutSource<'a, T>> {
        self.as_mut_slice().into_par_iter()
    }
}

/// Source over an owned vector.
pub struct VecSource<T> {
    items: Vec<T>,
}

impl<T: Send> Source for VecSource<T> {
    type Item = T;
    type SeqIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, mid: usize) -> (Self, Self) {
        let tail = self.items.split_off(mid);
        (self, VecSource { items: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.items.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Src = VecSource<T>;
    type Item = T;

    fn into_par_iter(self) -> ParIter<VecSource<T>> {
        ParIter::new(VecSource { items: self })
    }
}

/// Source over fixed-size sub-slices of a shared slice (see `par_chunks`).
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T> ChunksSource<'a, T> {
    pub(crate) fn new(slice: &'a [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        ChunksSource { slice, size }
    }
}

impl<'a, T: Sync> Source for ChunksSource<'a, T> {
    type Item = &'a [T];
    type SeqIter = std::slice::Chunks<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at(cut);
        (
            ChunksSource { slice: head, size: self.size },
            ChunksSource { slice: tail, size: self.size },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks(self.size)
    }
}

/// Source over fixed-size sub-slices of a mutable slice (`par_chunks_mut`).
pub struct ChunksMutSource<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T> ChunksMutSource<'a, T> {
    pub(crate) fn new(slice: &'a mut [T], size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        ChunksMutSource { slice, size }
    }
}

impl<'a, T: Send> Source for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];
    type SeqIter = std::slice::ChunksMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let cut = (mid * self.size).min(self.slice.len());
        let (head, tail) = self.slice.split_at_mut(cut);
        (
            ChunksMutSource { slice: head, size: self.size },
            ChunksMutSource { slice: tail, size: self.size },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        self.slice.chunks_mut(self.size)
    }
}

// ---------------------------------------------------------------------------
// Adapter sources
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct MapSource<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, O, F> Source for MapSource<S, F>
where
    S: Source,
    O: Send,
    F: Fn(S::Item) -> O + Send + Sync,
{
    type Item = O;
    type SeqIter = MapSeq<S::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (MapSource { base: head, f: self.f.clone() }, MapSource { base: tail, f: self.f })
    }

    fn into_seq(self) -> Self::SeqIter {
        MapSeq { inner: self.base.into_seq(), f: self.f }
    }
}

/// Sequential side of [`MapSource`].
pub struct MapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, O, F> Iterator for MapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> O,
{
    type Item = O;

    fn next(&mut self) -> Option<O> {
        self.inner.next().map(|item| (self.f)(item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `filter` adapter.
pub struct FilterSource<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, F> Source for FilterSource<S, F>
where
    S: Source,
    F: Fn(&S::Item) -> bool + Send + Sync,
{
    type Item = S::Item;
    type SeqIter = FilterSeq<S::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (FilterSource { base: head, f: self.f.clone() }, FilterSource { base: tail, f: self.f })
    }

    fn into_seq(self) -> Self::SeqIter {
        FilterSeq { inner: self.base.into_seq(), f: self.f }
    }
}

/// Sequential side of [`FilterSource`].
pub struct FilterSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F> Iterator for FilterSeq<I, F>
where
    I: Iterator,
    F: Fn(&I::Item) -> bool,
{
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.inner.by_ref().find(|item| (self.f)(item))
    }
}

/// `filter_map` adapter.
pub struct FilterMapSource<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, O, F> Source for FilterMapSource<S, F>
where
    S: Source,
    O: Send,
    F: Fn(S::Item) -> Option<O> + Send + Sync,
{
    type Item = O;
    type SeqIter = FilterMapSeq<S::SeqIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (
            FilterMapSource { base: head, f: self.f.clone() },
            FilterMapSource { base: tail, f: self.f },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        FilterMapSeq { inner: self.base.into_seq(), f: self.f }
    }
}

/// Sequential side of [`FilterMapSource`].
pub struct FilterMapSeq<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, O, F> Iterator for FilterMapSeq<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> Option<O>,
{
    type Item = O;

    fn next(&mut self) -> Option<O> {
        for item in self.inner.by_ref() {
            if let Some(mapped) = (self.f)(item) {
                return Some(mapped);
            }
        }
        None
    }
}

/// `flat_map` / `flat_map_iter` adapter.
pub struct FlatMapSource<S, O: IntoIterator, F> {
    base: S,
    f: Arc<F>,
    _produces: std::marker::PhantomData<fn() -> O>,
}

impl<S, O, F> Source for FlatMapSource<S, O, F>
where
    S: Source,
    O: IntoIterator,
    O::Item: Send,
    F: Fn(S::Item) -> O + Send + Sync,
{
    type Item = O::Item;
    type SeqIter = FlatMapSeq<S::SeqIter, O, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (
            FlatMapSource { base: head, f: self.f.clone(), _produces: std::marker::PhantomData },
            FlatMapSource { base: tail, f: self.f, _produces: std::marker::PhantomData },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        FlatMapSeq { inner: self.base.into_seq(), f: self.f, current: None }
    }
}

/// Sequential side of [`FlatMapSource`].
pub struct FlatMapSeq<I, O: IntoIterator, F> {
    inner: I,
    f: Arc<F>,
    current: Option<O::IntoIter>,
}

impl<I, O, F> Iterator for FlatMapSeq<I, O, F>
where
    I: Iterator,
    O: IntoIterator,
    F: Fn(I::Item) -> O,
{
    type Item = O::Item;

    fn next(&mut self) -> Option<O::Item> {
        loop {
            if let Some(current) = &mut self.current {
                if let Some(item) = current.next() {
                    return Some(item);
                }
            }
            match self.inner.next() {
                Some(item) => self.current = Some((self.f)(item).into_iter()),
                None => return None,
            }
        }
    }
}

/// `enumerate` adapter; `offset` tracks the chunk's global starting index.
pub struct EnumerateSource<S> {
    base: S,
    offset: usize,
}

impl<S: Source> Source for EnumerateSource<S> {
    type Item = (usize, S::Item);
    type SeqIter = EnumerateSeq<S::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (
            EnumerateSource { base: head, offset: self.offset },
            EnumerateSource { base: tail, offset: self.offset + mid },
        )
    }

    fn into_seq(self) -> Self::SeqIter {
        EnumerateSeq { inner: self.base.into_seq(), index: self.offset }
    }
}

/// Sequential side of [`EnumerateSource`].
pub struct EnumerateSeq<I> {
    inner: I,
    index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<(usize, I::Item)> {
        let item = self.inner.next()?;
        let index = self.index;
        self.index += 1;
        Some((index, item))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `zip` adapter; both sides split at the same input positions.
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

impl<A: Source, B: Source> Source for ZipSource<A, B> {
    type Item = (A::Item, B::Item);
    type SeqIter = std::iter::Zip<A::SeqIter, B::SeqIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a_head, a_tail) = self.a.split_at(mid);
        let (b_head, b_tail) = self.b.split_at(mid);
        (ZipSource { a: a_head, b: b_head }, ZipSource { a: a_tail, b: b_tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// `copied` adapter.
pub struct CopiedSource<S> {
    base: S,
}

impl<'a, T, S> Source for CopiedSource<S>
where
    T: 'a + Copy + Send + Sync,
    S: Source<Item = &'a T>,
{
    type Item = T;
    type SeqIter = std::iter::Copied<S::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (CopiedSource { base: head }, CopiedSource { base: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().copied()
    }
}

/// `cloned` adapter.
pub struct ClonedSource<S> {
    base: S,
}

impl<'a, T, S> Source for ClonedSource<S>
where
    T: 'a + Clone + Send + Sync,
    S: Source<Item = &'a T>,
{
    type Item = T;
    type SeqIter = std::iter::Cloned<S::SeqIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (head, tail) = self.base.split_at(mid);
        (ClonedSource { base: head }, ClonedSource { base: tail })
    }

    fn into_seq(self) -> Self::SeqIter {
        self.base.into_seq().cloned()
    }
}
