//! Parallel slice extensions: `par_chunks`, `par_chunks_mut`, and the
//! parallel unstable sorts.
//!
//! The sort is a chunked merge sort: the slice is cut into a **fixed** number
//! of pieces (a function of the length only, never of the pool size), the
//! pieces are sorted concurrently on the pool, and sorted runs are merged
//! pairwise — also concurrently — through a scratch buffer. Because both the
//! chunking and the merge order depend only on the input length, the result
//! is identical at every thread count.

// The crate denies unsafe; this module opts back in for the merge-sort
// pointer plumbing (every site carries a SAFETY note).
#![allow(unsafe_code)]

use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::sync::Mutex;

use crate::iter::{ChunksMutSource, ChunksSource, ParIter};
use crate::pool::current_pool;

/// Inputs at or below this length sort sequentially (`slice::sort_unstable`).
const SORT_SEQ_CUTOFF: usize = 4096;

/// Number of initial sorted runs for larger inputs. Fixed (not derived from
/// the pool) so the merge tree — and therefore the exact output permutation —
/// is the same at every thread count.
const SORT_CHUNKS: usize = 16;

/// `par_chunks` for shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk_size`-sized sub-slices (the final chunk
    /// may be shorter), mirroring `rayon::slice::ParallelSlice`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>> {
        ParIter::new(ChunksSource::new(self, chunk_size))
    }
}

/// Chunked mutation and sorting for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `chunk_size`-sized sub-slices.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>>;

    /// Parallel unstable sort, mirroring `par_sort_unstable`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    /// Parallel unstable sort by key.
    ///
    /// Unlike the `FnMut` of `slice::sort_unstable_by_key`, the key function
    /// is shared across threads and must be `Fn + Sync`.
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F);

    /// Parallel unstable sort with a comparator (`Fn + Sync`, shared across
    /// threads).
    ///
    /// A comparator that panics during the merge phase aborts the process
    /// (the merge moves elements through a scratch buffer and cannot unwind
    /// safely); panics during the initial chunk sorts propagate normally.
    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, f: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>> {
        ParIter::new(ChunksMutSource::new(self, chunk_size))
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_by(self, T::cmp);
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, f: F) {
        par_sort_by(self, |a, b| f(a).cmp(&f(b)));
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> Ordering + Sync>(&mut self, f: F) {
        par_sort_by(self, f);
    }
}

/// Raw pointer that may cross threads; disjointness of the regions accessed
/// through it is guaranteed by the merge plan (each task owns one output run).
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    /// The wrapped pointer. A method (rather than direct field access) so
    /// 2021-edition closures capture the `Sync` wrapper, not the raw field.
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: see the type docs — every task dereferences a disjoint region.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: as above — tasks share the wrapper but never the region behind it.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Aborts the process if dropped while unwinding; `forget` it on success.
struct AbortOnUnwind;

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!("fatal: comparator panicked during a parallel merge; aborting");
        std::process::abort();
    }
}

fn par_sort_by<T, C>(v: &mut [T], cmp: C)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if n <= SORT_SEQ_CUTOFF {
        v.sort_unstable_by(&cmp);
        return;
    }
    let pool = current_pool();
    let run_len = n.div_ceil(SORT_CHUNKS);

    // Phase 1: sort each run concurrently. `slice::sort_unstable_by` is
    // panic-safe, so comparator panics here unwind normally via the pool.
    {
        let runs: Vec<Mutex<Option<&mut [T]>>> =
            v.chunks_mut(run_len).map(|chunk| Mutex::new(Some(chunk))).collect();
        let task = |index: usize| {
            let run = runs[index]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("sort run claimed twice");
            run.sort_unstable_by(&cmp);
        };
        pool.run_batch(runs.len(), &task);
    }

    // Phase 2: merge sorted runs pairwise, ping-ponging between the slice and
    // a scratch buffer. The scratch holds bitwise copies that are never
    // dropped (`MaybeUninit`), so ownership stays with the slice throughout.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit` contents may be left uninitialized.
    unsafe { scratch.set_len(n) };

    let mut width = run_len;
    let mut in_slice = true; // where the current runs live
    while width < n {
        let (src, dst) = if in_slice {
            (v.as_mut_ptr(), scratch.as_mut_ptr() as *mut T)
        } else {
            (scratch.as_mut_ptr() as *mut T, v.as_mut_ptr())
        };
        let pairs = n.div_ceil(2 * width);
        let src = SendPtr(src);
        let dst = SendPtr(dst);
        let task = |pair: usize| {
            let lo = pair * 2 * width;
            let mid = (lo + width).min(n);
            let hi = (lo + 2 * width).min(n);
            let guard = AbortOnUnwind;
            // SAFETY: [lo, hi) regions are disjoint across tasks; `src` and
            // `dst` are distinct buffers of length `n`; both hold initialized
            // `T`s in [lo, hi) (src: the sorted runs of this round; dst is
            // write-only).
            unsafe {
                merge_into(
                    src.get().add(lo),
                    mid - lo,
                    src.get().add(mid),
                    hi - mid,
                    dst.get().add(lo),
                    &cmp,
                );
            }
            std::mem::forget(guard);
        };
        pool.run_batch(pairs, &task);
        width *= 2;
        in_slice = !in_slice;
    }

    if !in_slice {
        // Result ended up in the scratch buffer; copy it home. The slice's
        // previous contents are plain bits of moved-from values — overwriting
        // them drops nothing and restores unique ownership to the slice.
        // SAFETY: both buffers have length `n` and do not overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(scratch.as_ptr() as *const T, v.as_mut_ptr(), n);
        }
    }
    // `scratch` is dropped as raw capacity: `MaybeUninit` has no drop glue, so
    // no `T` is ever dropped from it.
}

/// Merges the sorted runs `a[0..a_len]` and `b[0..b_len]` into `out`,
/// preferring `a` on ties (deterministic, left-run-first).
///
/// # Safety
///
/// `a`, `b`, and `out` must be valid for the given lengths, `out` disjoint
/// from both inputs, and all inputs initialized. Elements are *copied*; the
/// caller is responsible for ensuring only one of source/destination is
/// treated as owning afterwards.
unsafe fn merge_into<T, C: Fn(&T, &T) -> Ordering>(
    mut a: *const T,
    a_len: usize,
    mut b: *const T,
    b_len: usize,
    mut out: *mut T,
    cmp: &C,
) {
    let a_end = a.add(a_len);
    let b_end = b.add(b_len);
    while a < a_end && b < b_end {
        let take_a = cmp(&*a, &*b) != Ordering::Greater;
        let src = if take_a { a } else { b };
        std::ptr::copy_nonoverlapping(src, out, 1);
        out = out.add(1);
        if take_a {
            a = a.add(1);
        } else {
            b = b.add(1);
        }
    }
    let a_rest = a_end.offset_from(a) as usize;
    std::ptr::copy_nonoverlapping(a, out, a_rest);
    out = out.add(a_rest);
    let b_rest = b_end.offset_from(b) as usize;
    std::ptr::copy_nonoverlapping(b, out, b_rest);
}
