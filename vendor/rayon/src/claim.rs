//! The executor's chunk-claim/completion protocol, factored out of
//! [`crate::pool`] so the schedule-exploring model checker can drive the
//! *real* protocol (see `tests/model_claim.rs`, behind the `model-check`
//! feature) and so its two invariants live in one place:
//!
//! 1. **Exactly-once execution** — [`ChunkClaim::claim`] hands out each
//!    chunk index at most once (one atomic RMW; a split load+store here is
//!    precisely the double-claim mutant the model checker catches).
//! 2. **Publication on completion** — [`ChunkClaim::finish`] bumps the
//!    completion counter with `AcqRel`, so whoever observes the batch
//!    complete (the `true` return, or [`ChunkClaim::is_complete`] with its
//!    `Acquire` load) also observes every chunk's writes. A relaxed counter
//!    here is the relaxed-done-counter mutant.

#[cfg(not(feature = "model-check"))]
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(feature = "model-check")]
use cldiam_modelcheck::sync::atomic::{AtomicUsize, Ordering};

/// Claim/completion state for one batch of `total` independent chunks.
#[derive(Debug)]
pub struct ChunkClaim {
    total: usize,
    /// Next unclaimed chunk index (may overshoot `total`).
    next: AtomicUsize,
    /// Number of chunks that finished executing.
    done: AtomicUsize,
}

impl ChunkClaim {
    /// A fresh batch of `total` chunks, none claimed.
    pub fn new(total: usize) -> Self {
        ChunkClaim { total, next: AtomicUsize::new(0), done: AtomicUsize::new(0) }
    }

    /// Number of chunks in the batch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Claims the next chunk, or `None` once all chunks have been handed
    /// out. Each index in `0..total` is returned exactly once across all
    /// claiming threads (the claim is a single atomic RMW).
    pub fn claim(&self) -> Option<usize> {
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        (index < self.total).then_some(index)
    }

    /// `true` once every chunk has been claimed (they may still be
    /// running — completion is [`ChunkClaim::finish`]'s business).
    pub fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Records one chunk as finished; returns `true` for exactly the call
    /// that completes the batch. The `AcqRel` bump makes every finished
    /// chunk's writes visible to the completing caller.
    pub fn finish(&self) -> bool {
        self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.total
    }

    /// `true` once every chunk has finished; the `Acquire` load pairs with
    /// the `AcqRel` bumps in [`ChunkClaim::finish`], so a `true` return
    /// also publishes all chunk writes to the caller.
    pub fn is_complete(&self) -> bool {
        self.done.load(Ordering::Acquire) == self.total
    }
}
