//! Threaded stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors an API-compatible subset of rayon. Unlike the PR-1 sequential
//! shim, this crate is a **real multithreaded executor**: a lazily created
//! global [`ThreadPool`] (plus buildable dedicated pools) runs every parallel
//! operation on `std::thread` workers with per-worker queues and
//! chunk-stealing (see [`mod@pool`]'s module docs for the execution model),
//! and [`join`] genuinely blocks on concurrently executing closures.
//!
//! # Determinism contract
//!
//! Every consumer in this workspace depends on results being independent of
//! the thread count and of scheduling. The executor guarantees this by
//! **chunk-ordered recombination**: parallel iterators split work into
//! contiguous input chunks, and terminal operations recombine per-chunk
//! results in chunk order (concatenation for `collect`, left-to-right folds
//! for reductions — see [`iter`]'s module docs for the exact rules), while
//! [`slice::ParallelSliceMut::par_sort_unstable`] fixes its merge tree as a
//! function of the input length alone. Reductions must use associative
//! operations (all integer/boolean reductions in this workspace qualify).
//!
//! # Thread-count knobs
//!
//! The global pool sizes itself from, in priority order: the
//! `CLDIAM_THREADS` environment variable, the `RAYON_NUM_THREADS` environment
//! variable, and the hardware parallelism. [`current_num_threads`] reports
//! the size of the innermost installed pool (the global default outside any
//! [`ThreadPool::install`]). Deterministic *generation* chunking must not use
//! this value — see `cldiam_gen`'s `GEN_CHUNKS`.
//!
//! Only the API surface used by the CL-DIAM crates is provided:
//!
//! * `prelude::*` with `par_iter` / `par_iter_mut` / `into_par_iter` /
//!   `par_chunks` / `par_chunks_mut` / `par_sort_unstable`;
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] with a real `install`;
//! * [`current_num_threads`] and a blocking [`join`].
//!
//! Swapping the real rayon back in is a one-line change in each crate's
//! `Cargo.toml` (drop the `path` key); no source changes are required.

// Unsafe is confined to the `pool` and `slice` modules, which opt back
// in at module scope with their invariants documented per site.
#![deny(unsafe_code)]

use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

pub mod claim;
pub mod iter;
pub mod pool;
pub mod slice;

use pool::PoolInner;

/// Number of threads parallel operations issued from this thread will use:
/// the innermost [`ThreadPool::install`]ed pool's size, or the global pool's
/// configured size outside any `install`.
pub fn current_num_threads() -> usize {
    pool::current_threads()
}

/// Error returned by [`ThreadPoolBuilder::build`] when worker threads cannot
/// be spawned.
#[derive(Debug)]
pub struct ThreadPoolBuildError(std::io::Error);

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to spawn thread pool workers: {}", self.0)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A pool of worker threads executing parallel operations.
///
/// Dropping the pool shuts the workers down and joins them.
pub struct ThreadPool {
    pub(crate) inner: Arc<PoolInner>,
    handles: Vec<JoinHandle<()>>,
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.inner.threads()).finish()
    }
}

impl ThreadPool {
    /// Runs `op` with this pool installed as the calling thread's current
    /// pool: every parallel operation inside `op` executes on this pool's
    /// workers (with the calling thread pitching in).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        pool::with_pool(self.inner.clone(), op)
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.inner.threads()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        pool::shutdown(&self.inner, &mut self.handles);
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (defaults to the global configuration,
    /// see the crate docs; clamped to at least 1).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Names the worker threads.
    pub fn thread_name<F>(mut self, f: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(f));
        self
    }

    /// Spawns the workers and builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(pool::default_threads).max(1);
        let mut name = self.thread_name;
        let (inner, handles) = pool::spawn_workers(threads, |index| match &mut name {
            Some(f) => f(index),
            None => format!("rayon-worker-{index}"),
        })
        .map_err(ThreadPoolBuildError)?;
        Ok(ThreadPool { inner, handles })
    }
}

/// Runs both closures concurrently (the calling thread takes one, an idle
/// worker of the current pool may take the other) and blocks until both have
/// returned.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let current = pool::current_pool();
    let a = Mutex::new(Some(a));
    let b = Mutex::new(Some(b));
    let result_a = Mutex::new(None);
    let result_b = Mutex::new(None);
    let task = |index: usize| {
        fn take<T>(slot: &Mutex<Option<T>>) -> T {
            slot.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("join closure claimed twice")
        }
        if index == 0 {
            let out = take(&a)();
            *result_a.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
        } else {
            let out = take(&b)();
            *result_b.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
        }
    };
    current.run_batch(2, &task);
    let ra = result_a
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .expect("join closure a produced no result");
    let rb = result_b
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .expect("join closure b produced no result");
    (ra, rb)
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParIter,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn rayon_reduce_signature_works() {
        let (lo, hi) = (0..10usize)
            .into_par_iter()
            .map(|x| (x, x))
            .reduce(|| (usize::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)));
        assert_eq!((lo, hi), (0, 9));
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v: Vec<usize> = (0..3usize).into_par_iter().flat_map_iter(|x| 0..x).collect();
        assert_eq!(v, vec![0, 0, 1]);
    }

    #[test]
    fn zip_pairs_two_par_iters() {
        let a = [1, 2, 3];
        let b = [4, 5, 6];
        let any_diff = a.par_iter().zip(b.par_iter()).any(|(x, y)| x != y);
        assert!(any_diff);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![5, 1, 4, 2, 3];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_sort_matches_std_on_large_input() {
        let mut v: Vec<u64> =
            (0..100_000u64).map(|i| i.wrapping_mul(0x9E37_79B9) % 10_007).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| v.par_sort_unstable());
        assert_eq!(v, expected);
    }

    #[test]
    fn pool_installs_and_runs_on_workers() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 41 + 1), 42);
        // A large map visits worker threads, not only the caller.
        let caller = std::thread::current().id();
        let ids: HashSet<_> = pool.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_micros(1));
                    std::thread::current().id()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect()
        });
        assert!(
            ids.len() > 1 || !ids.contains(&caller),
            "expected at least one chunk on a worker thread"
        );
    }

    #[test]
    fn install_controls_current_num_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
    }

    #[test]
    fn chunks_cover_slice() {
        let v: Vec<usize> = (0..10).collect();
        let total: usize = v.par_chunks(3).map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn join_runs_both_and_blocks() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = pool.install(|| super::join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let run = || {
            let evens: Vec<u64> = (0..10_000u64).into_par_iter().filter(|x| x % 2 == 0).collect();
            let flat: Vec<u64> = (0..100u64).into_par_iter().flat_map_iter(|x| 0..x % 7).collect();
            let total: u64 = (0..5_000u64).into_par_iter().sum();
            (evens, flat, total)
        };
        let sequential = run();
        for threads in [1, 2, 8] {
            let pool = super::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            assert_eq!(pool.install(run), sequential, "{threads} threads");
        }
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..1000usize).into_par_iter().for_each(|i| {
                    if i == 500 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(result.is_err());
        // The pool stays usable afterwards.
        assert_eq!(pool.install(|| (0..100usize).into_par_iter().count()), 100);
    }

    #[test]
    fn propagated_panic_is_deterministic_across_schedules() {
        // Several chunks panic concurrently; the caller must always observe
        // the payload from the lowest-indexed chunk, regardless of which
        // worker reported first. Chunks are contiguous index ranges, so the
        // lowest panicking chunk aborts at the globally smallest bad item.
        for threads in [1, 4] {
            let pool = super::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            for _ in 0..20 {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.install(|| {
                        (0..1000usize).into_par_iter().for_each(|i| {
                            if i % 100 == 37 {
                                panic!("boom at {i}");
                            }
                        });
                    })
                }));
                let payload = result.unwrap_err();
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .expect("panic payload should be the formatted message");
                assert_eq!(message, "boom at 37", "{threads} threads");
            }
        }
    }

    #[test]
    fn for_each_visits_everything_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = super::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        pool.install(|| {
            (0..100_000usize).into_par_iter().for_each(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.into_inner(), 100_000);
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total: usize = pool.install(|| {
            (0..8usize).into_par_iter().map(|_| (0..100usize).into_par_iter().count()).sum()
        });
        assert_eq!(total, 800);
    }
}
