//! Sequential stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of rayon that executes everything
//! on the calling thread. "Parallel" iterators are a thin [`ParIter`] wrapper
//! around ordinary [`Iterator`]s: adapters with rayon-specific signatures
//! (`reduce(identity, op)`, `flat_map_iter`, …) are provided as inherent
//! methods, and everything whose signature matches std (`collect`, `sum`,
//! `zip`, `any`, …) falls through to the [`Iterator`] implementation, with
//! sequential semantics and deterministic ordering.
//!
//! Only the API surface used by the CL-DIAM crates is provided:
//!
//! * `prelude::*` with `par_iter` / `par_iter_mut` / `into_par_iter` /
//!   `par_chunks` / `par_sort_unstable`;
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] with `install`;
//! * [`current_num_threads`] and [`join`].
//!
//! Swapping the real rayon back in is a one-line change in each crate's
//! `Cargo.toml` (drop the `path` key); no source changes are required.

use std::fmt;

/// Simulated thread-count reported by [`current_num_threads`].
///
/// The generators use this value to decide how many deterministic chunks to
/// split work into (each chunk derives its own RNG stream), so it must not
/// depend on the machine the tests run on.
pub const SIMULATED_NUM_THREADS: usize = 8;

/// Number of "threads" in the (simulated) global pool.
///
/// Always [`SIMULATED_NUM_THREADS`], regardless of the hardware, so that
/// chunked deterministic generation produces identical graphs everywhere.
pub fn current_num_threads() -> usize {
    SIMULATED_NUM_THREADS
}

/// Error returned by [`ThreadPoolBuilder::build`]. Never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error (unreachable in the sequential shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" that runs closures on the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Executes `op` immediately on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        op()
    }

    /// The configured (simulated) thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the simulated thread count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Accepted for API compatibility; the sequential shim spawns no threads,
    /// so the name is never used.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads.unwrap_or(SIMULATED_NUM_THREADS).max(1) })
    }
}

/// Runs both closures (sequentially, left then right) and returns both
/// results, mirroring `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

pub mod iter {
    //! Sequential equivalents of rayon's parallel iterator traits.

    /// A "parallel" iterator: wraps a sequential [`Iterator`].
    ///
    /// Adapters whose rayon signature differs from std (`reduce`,
    /// `flat_map_iter`, `fold_with`, …) are inherent methods so they shadow
    /// the [`Iterator`] versions; adapters with identical signatures fall
    /// through to the [`Iterator`] implementation but are re-wrapped here so
    /// the chain keeps its rayon-only methods.
    #[derive(Clone, Debug)]
    pub struct ParIter<I>(pub(crate) I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;

        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        /// Maps each item through `f`.
        pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
            ParIter(self.0.map(f))
        }

        /// Keeps items matching `f`.
        pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
            ParIter(self.0.filter(f))
        }

        /// Filter and map in one pass.
        pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
            self,
            f: F,
        ) -> ParIter<std::iter::FilterMap<I, F>> {
            ParIter(self.0.filter_map(f))
        }

        /// Maps each item to a nested collection and flattens.
        pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, O, F>> {
            ParIter(self.0.flat_map(f))
        }

        /// rayon's `flat_map_iter`: like [`flat_map`](Self::flat_map) but the
        /// produced iterators are consumed sequentially (which everything in
        /// this shim is anyway).
        pub fn flat_map_iter<O: IntoIterator, F: FnMut(I::Item) -> O>(
            self,
            f: F,
        ) -> ParIter<std::iter::FlatMap<I, O, F>> {
            ParIter(self.0.flat_map(f))
        }

        /// Pairs each item with its index.
        pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
            ParIter(self.0.enumerate())
        }

        /// Zips with another parallel iterator.
        pub fn zip<Z: IntoParallelIterator>(
            self,
            other: Z,
        ) -> ParIter<std::iter::Zip<I, ParIter<Z::Iter>>> {
            ParIter(self.0.zip(other.into_par_iter()))
        }

        /// rayon's `reduce`: folds from `identity()` with `op`.
        pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
        where
            ID: Fn() -> I::Item,
            OP: Fn(I::Item, I::Item) -> I::Item,
        {
            self.0.fold(identity(), op)
        }

        /// Accepted for API compatibility; chunking hints are meaningless in
        /// the sequential shim.
        pub fn with_min_len(self, _min: usize) -> Self {
            self
        }
    }

    impl<'a, T: 'a + Copy, I: Iterator<Item = &'a T>> ParIter<I> {
        /// Copies borrowed items.
        pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
            ParIter(self.0.copied())
        }
    }

    impl<'a, T: 'a + Clone, I: Iterator<Item = &'a T>> ParIter<I> {
        /// Clones borrowed items.
        pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
            ParIter(self.0.cloned())
        }
    }

    /// Consuming conversion into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Items yielded.
        type Item;

        /// Converts `self` into a parallel iterator. Sequential in the shim.
        fn into_par_iter(self) -> ParIter<Self::Iter>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> ParIter<I::IntoIter> {
            ParIter(self.into_iter())
        }
    }

    /// Borrowing conversion (`par_iter`) for collections whose references
    /// iterate, mirroring `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Items yielded (references into `self`).
        type Item: 'data;

        /// Iterates `&self`. Sequential in the shim.
        fn par_iter(&'data self) -> ParIter<Self::Iter>;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
    where
        &'data I: IntoIterator,
        <&'data I as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data I as IntoIterator>::IntoIter;
        type Item = <&'data I as IntoIterator>::Item;

        fn par_iter(&'data self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }

    /// Mutable borrowing conversion (`par_iter_mut`).
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Items yielded (mutable references into `self`).
        type Item: 'data;

        /// Iterates `&mut self`. Sequential in the shim.
        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
    }

    impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
    where
        &'data mut I: IntoIterator,
        <&'data mut I as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data mut I as IntoIterator>::IntoIter;
        type Item = <&'data mut I as IntoIterator>::Item;

        fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
            ParIter(self.into_iter())
        }
    }
}

pub mod slice {
    //! Sequential equivalents of rayon's slice extensions.

    use crate::iter::ParIter;

    /// `par_chunks` and friends for shared slices.
    pub trait ParallelSlice<T> {
        /// Chunked iteration, mirroring `rayon::slice::ParallelSlice`.
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
            ParIter(self.chunks(chunk_size))
        }
    }

    /// Sorting and chunked mutation for mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Mutable chunked iteration.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;

        /// Unstable sort, mirroring `par_sort_unstable`.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;

        /// Unstable sort by key.
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);

        /// Unstable sort with a comparator.
        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
            ParIter(self.chunks_mut(chunk_size))
        }

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.sort_unstable_by_key(f);
        }

        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, f: F) {
            self.sort_unstable_by(f);
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_behaves_like_iter() {
        let v = vec![3u64, 1, 2];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let sum: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(sum, 45);
    }

    #[test]
    fn rayon_reduce_signature_works() {
        let (lo, hi) = (0..10usize)
            .into_par_iter()
            .map(|x| (x, x))
            .reduce(|| (usize::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)));
        assert_eq!((lo, hi), (0, 9));
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v: Vec<usize> = (0..3usize).into_par_iter().flat_map_iter(|x| 0..x).collect();
        assert_eq!(v, vec![0, 0, 1]);
    }

    #[test]
    fn zip_pairs_two_par_iters() {
        let a = [1, 2, 3];
        let b = [4, 5, 6];
        let any_diff = a.par_iter().zip(b.par_iter()).any(|(x, y)| x != y);
        assert!(any_diff);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![5, 1, 4, 2, 3];
        v.par_sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn pool_installs_on_calling_thread() {
        let pool = super::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn chunks_cover_slice() {
        let v: Vec<usize> = (0..10).collect();
        let total: usize = v.par_chunks(3).map(|c| c.len()).sum();
        assert_eq!(total, 10);
    }
}
