//! The threaded executor: worker threads, per-worker queues, and
//! chunk-stealing batches.
//!
//! Every parallel operation in this crate funnels into [`PoolInner::run_batch`]:
//! the caller describes the work as `total` independent chunks behind a shared
//! `Fn(usize)` closure, the batch is announced to the pool, and then *every*
//! participant — the submitting thread included — claims chunk indices from a
//! shared atomic counter until none remain. Workers that find their own queue
//! empty steal batches from their neighbours' queues, so an idle thread always
//! converges on whatever batch is still running. Because chunks are claimed by
//! index and results are recombined by index, scheduling order never affects
//! the outcome.
//!
//! The submitting thread blocks until all chunks have *finished* (not merely
//! been claimed), which is what makes the lifetime erasure in [`Batch::task`]
//! sound: the closure and everything it borrows outlive the batch.

// The crate denies unsafe; this module opts back in for the batch
// Send/Sync impls (every site carries a SAFETY note).
#![allow(unsafe_code)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

use crate::claim::ChunkClaim;

/// How many chunks a parallel operation is split into per pool thread. A
/// small oversubscription factor lets fast threads steal extra chunks from
/// slow ones without inflating per-chunk bookkeeping.
pub(crate) const CHUNKS_PER_THREAD: usize = 4;

fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking chunk poisons nothing logically: batch state stays
    // consistent (the panic payload is stashed and re-thrown by the caller),
    // so poisoning is ignored, parking_lot style.
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One submitted parallel operation: `total` chunks behind a shared closure.
pub(crate) struct Batch {
    /// Erased pointer to the caller's chunk closure.
    ///
    /// # Safety
    ///
    /// Dereferenced only between claiming a chunk index and incrementing
    /// `done` for it; the submitting caller keeps the referent alive until
    /// `done == total` (it blocks in [`Batch::wait`]), so every dereference
    /// happens while the closure is still live.
    task: *const (dyn Fn(usize) + Sync),
    /// Chunk claiming and completion tracking — the lock-free heart of the
    /// executor, factored into [`ChunkClaim`] so the model checker can
    /// drive it directly (see `tests/model_claim.rs`).
    claim: ChunkClaim,
    /// Panic payload raised by the *lowest-indexed* panicking chunk, paired
    /// with its index, re-thrown by the caller. Keeping the lowest index
    /// (rather than the first observed) makes the propagated panic
    /// deterministic: every chunk always runs (claiming never aborts early),
    /// so the set of panicking chunks is schedule-independent, and the
    /// minimum over that set is too.
    panic: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>>,
    completed: Mutex<bool>,
    cvar: Condvar,
}

// SAFETY: the raw `task` pointer is what blocks the auto-traits; it points at
// a `Sync` closure that outlives the batch (see the field's safety comment),
// so sharing the pointer across the pool's threads is sound.
unsafe impl Send for Batch {}
// SAFETY: as above — all other fields are themselves Sync; only the erased
// pointer needs the manual argument.
unsafe impl Sync for Batch {}

impl Batch {
    fn new(task: *const (dyn Fn(usize) + Sync), total: usize) -> Self {
        Batch {
            task,
            claim: ChunkClaim::new(total),
            panic: Mutex::new(None),
            completed: Mutex::new(false),
            cvar: Condvar::new(),
        }
    }

    /// `true` once every chunk has been claimed (they may still be running).
    fn exhausted(&self) -> bool {
        self.claim.exhausted()
    }

    /// Claims and executes chunks until none are left. Called by workers and
    /// by the submitting thread alike — the "chunk stealing" at the heart of
    /// the executor.
    fn help(&self) {
        while let Some(index) = self.claim.claim() {
            // SAFETY: per the invariant on `task`, the closure is alive until
            // every chunk has finished, and this chunk's `finish` happens
            // after the call below.
            let task = unsafe { &*self.task };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| task(index))) {
                let mut slot = lock(&self.panic);
                match &*slot {
                    Some((lowest, _)) if *lowest <= index => {}
                    _ => *slot = Some((index, payload)),
                }
            }
            if self.claim.finish() {
                *lock(&self.completed) = true;
                self.cvar.notify_all();
            }
        }
    }

    /// Blocks until every chunk has finished executing.
    fn wait(&self) {
        let mut completed = lock(&self.completed);
        while !*completed {
            completed =
                self.cvar.wait(completed).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Shared state of a thread pool: one work queue per worker plus the sleep
/// machinery.
pub(crate) struct PoolInner {
    /// Per-worker queues of announced batches. A batch stays queued until all
    /// of its chunks have been claimed, so several workers can pick it up and
    /// help concurrently; exhausted batches are dropped lazily on the next
    /// scan.
    queues: Vec<Mutex<VecDeque<Arc<Batch>>>>,
    /// Submission generation counter; bumped under the lock on every
    /// announcement so sleeping workers never miss a wakeup.
    signals: Mutex<u64>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Round-robin cursor distributing announcements over the queues.
    rr: AtomicUsize,
    threads: usize,
}

impl PoolInner {
    /// Number of worker threads in the pool.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `total` chunks of `task` on the pool and blocks until all have
    /// finished. The calling thread participates, so a 1-thread pool (or a
    /// fully busy one) still makes progress, and nested submissions from
    /// worker threads cannot deadlock.
    pub(crate) fn run_batch(&self, total: usize, task: &(dyn Fn(usize) + Sync)) {
        if total == 0 {
            return;
        }
        // SAFETY: lifetime erasure only — this function blocks in
        // `batch.wait()` below until every chunk has finished, so the closure
        // outlives all dereferences (see the invariant on `Batch::task`).
        let task: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task)
        };
        let batch = Arc::new(Batch::new(task, total));
        if total > 1 && !self.queues.is_empty() {
            let slot = self.rr.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            lock(&self.queues[slot]).push_back(batch.clone());
            *lock(&self.signals) += 1;
            self.wake.notify_all();
        }
        batch.help();
        batch.wait();
        let payload = lock(&batch.panic).take();
        if let Some((_, payload)) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Finds a batch with unclaimed chunks, preferring the worker's own queue
    /// and stealing from neighbours otherwise. Exhausted batches encountered
    /// along the way are retired.
    fn find_batch(&self, start: usize) -> Option<Arc<Batch>> {
        let queues = self.queues.len();
        for offset in 0..queues {
            let mut queue = lock(&self.queues[(start + offset) % queues]);
            while let Some(front) = queue.front() {
                if front.exhausted() {
                    queue.pop_front();
                    continue;
                }
                // Clone, but leave the batch queued so other idle workers can
                // join in; it is retired above once all chunks are claimed.
                return Some(front.clone());
            }
        }
        None
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        loop {
            // Snapshot the generation *before* scanning: a submission that
            // lands between the scan and the wait bumps the generation, so the
            // wait below returns immediately instead of losing the wakeup.
            let seen = *lock(&self.signals);
            if let Some(batch) = self.find_batch(index) {
                batch.help();
                continue;
            }
            let mut signals = lock(&self.signals);
            loop {
                if self.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                if *signals != seen {
                    break;
                }
                signals =
                    self.wake.wait(signals).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
    }
}

thread_local! {
    /// Stack of pools "installed" on this thread; parallel operations run on
    /// the top entry (the global pool when empty). Worker threads pin their
    /// own pool at the bottom of their stack for their entire lifetime.
    static CURRENT_POOL: RefCell<Vec<Arc<PoolInner>>> = const { RefCell::new(Vec::new()) };
}

/// The pool parallel operations on this thread execute on.
pub(crate) fn current_pool() -> Arc<PoolInner> {
    CURRENT_POOL
        .with(|stack| stack.borrow().last().cloned())
        .unwrap_or_else(|| global_pool().inner.clone())
}

/// Thread count governing parallel operations issued from this thread, without
/// forcing the global pool into existence.
pub(crate) fn current_threads() -> usize {
    CURRENT_POOL
        .with(|stack| stack.borrow().last().map(|pool| pool.threads()))
        .unwrap_or_else(default_threads)
}

/// Pushes `pool` onto the calling thread's pool stack for the duration of
/// `op` (popped even if `op` panics).
pub(crate) fn with_pool<R>(pool: Arc<PoolInner>, op: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            CURRENT_POOL.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    CURRENT_POOL.with(|stack| stack.borrow_mut().push(pool));
    let _guard = PopOnDrop;
    op()
}

/// Default pool size: `CLDIAM_THREADS`, then `RAYON_NUM_THREADS`, then the
/// hardware parallelism. Cached once per process so the global pool and
/// [`crate::current_num_threads`] always agree.
pub(crate) fn default_threads() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        for key in ["CLDIAM_THREADS", "RAYON_NUM_THREADS"] {
            if let Ok(value) = std::env::var(key) {
                if let Ok(parsed) = value.trim().parse::<usize>() {
                    if parsed >= 1 {
                        return parsed;
                    }
                }
            }
        }
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    })
}

/// The lazily created global pool (never torn down).
fn global_pool() -> &'static crate::ThreadPool {
    static GLOBAL: OnceLock<crate::ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        crate::ThreadPoolBuilder::new()
            .num_threads(default_threads())
            .thread_name(|index| format!("cldiam-rayon-{index}"))
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// Spawns `threads` workers, each pinned to its queue index.
pub(crate) fn spawn_workers(
    threads: usize,
    mut name: impl FnMut(usize) -> String,
) -> std::io::Result<(Arc<PoolInner>, Vec<JoinHandle<()>>)> {
    let inner = Arc::new(PoolInner {
        queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        signals: Mutex::new(0),
        wake: Condvar::new(),
        shutdown: AtomicBool::new(false),
        rr: AtomicUsize::new(0),
        threads,
    });
    let mut handles = Vec::with_capacity(threads);
    for index in 0..threads {
        let pool = inner.clone();
        let handle = std::thread::Builder::new().name(name(index)).spawn(move || {
            // Parallel operations issued from inside a chunk run on this
            // worker's own pool.
            CURRENT_POOL.with(|stack| stack.borrow_mut().push(pool.clone()));
            pool.worker_loop(index);
        })?;
        handles.push(handle);
    }
    Ok((inner, handles))
}

/// Signals shutdown and joins the workers. Called from `ThreadPool::drop`.
pub(crate) fn shutdown(inner: &PoolInner, handles: &mut Vec<JoinHandle<()>>) {
    inner.shutdown.store(true, Ordering::Relaxed);
    *lock(&inner.signals) += 1;
    inner.wake.notify_all();
    for handle in handles.drain(..) {
        let _ = handle.join();
    }
}
