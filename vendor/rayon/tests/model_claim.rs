//! Model-checked verification of the executor's real chunk-claim protocol
//! (`rayon::claim::ChunkClaim` — the lock-free heart of `Batch::help`).
//! Compiled only with `--features model-check`. Run with:
//!
//! ```text
//! cargo test -p rayon --features model-check --test model_claim
//! ```

#![cfg(feature = "model-check")]

use std::sync::Arc;

use cldiam_modelcheck as mc;
use mc::cell::TrackedCell;
use rayon::claim::ChunkClaim;

#[test]
fn chunks_are_claimed_exactly_once() {
    // Two workers drain a 2-chunk batch; across every interleaving each
    // chunk index is handed out exactly once (the TrackedCell writes would
    // race if a chunk were double-claimed) and nothing is skipped.
    let report = mc::explore(mc::Config::exhaustive(), || {
        let claim = Arc::new(ChunkClaim::new(2));
        let chunks: Arc<[TrackedCell<usize>; 2]> = Arc::new([
            TrackedCell::new("chunk[0]", usize::MAX),
            TrackedCell::new("chunk[1]", usize::MAX),
        ]);
        let workers: Vec<_> = (0..2)
            .map(|worker| {
                let (claim, chunks) = (Arc::clone(&claim), Arc::clone(&chunks));
                mc::thread::spawn(move || {
                    let mut claimed = Vec::new();
                    while let Some(index) = claim.claim() {
                        chunks[index].set(worker);
                        claimed.push(index);
                        claim.finish();
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<usize> = workers.into_iter().flat_map(|w| w.join()).collect();
        all.sort_unstable();
        assert_eq!(all, [0, 1], "each chunk claimed exactly once");
        assert!(claim.exhausted());
        assert!(claim.is_complete());
        assert!(chunks[0].get() != usize::MAX && chunks[1].get() != usize::MAX);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
    assert!(report.schedules > 1);
}

#[test]
fn completion_publishes_chunk_writes_to_the_waiter() {
    // The `Batch::wait` shape: a coordinator that observes `is_complete()`
    // must also observe every chunk's writes (the AcqRel/Acquire pairing
    // in `finish`/`is_complete`). With TrackedCell payloads, a missing
    // edge would be reported as a data race.
    let report = mc::explore(mc::Config::bounded(2), || {
        let claim = Arc::new(ChunkClaim::new(2));
        let chunks: Arc<[TrackedCell<u64>; 2]> =
            Arc::new([TrackedCell::new("result[0]", 0), TrackedCell::new("result[1]", 0)]);
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let (claim, chunks) = (Arc::clone(&claim), Arc::clone(&chunks));
                mc::thread::spawn(move || {
                    while let Some(index) = claim.claim() {
                        chunks[index].set(index as u64 + 10);
                        claim.finish();
                    }
                })
            })
            .collect();
        // Consume the results as soon as the claim reports completion —
        // before joining, exactly how the submitting thread in `run_batch`
        // reads results other threads produced.
        while !claim.is_complete() {
            mc::hint::spin_loop();
        }
        assert_eq!(chunks[0].get() + chunks[1].get(), 21);
        for w in workers {
            w.join();
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn finish_reports_completion_exactly_once() {
    let report = mc::explore(mc::Config::exhaustive(), || {
        let claim = Arc::new(ChunkClaim::new(2));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let claim = Arc::clone(&claim);
                mc::thread::spawn(move || {
                    let mut completions = 0usize;
                    while claim.claim().is_some() {
                        if claim.finish() {
                            completions += 1;
                        }
                    }
                    completions
                })
            })
            .collect();
        let total: usize = workers.into_iter().map(|w| w.join()).sum();
        assert_eq!(total, 1, "exactly one finish() call completes the batch");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}
