//! Library half of the `xtask` automation binary, exposed so the lint
//! scanner has a unit-testable API (`tests/lint_fixtures.rs` drives
//! [`lint::scan_source`] over fixture files with known violations).

#![forbid(unsafe_code)]

pub mod lint;
