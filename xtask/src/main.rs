//! `cargo xtask <command>` — repo automation entry point.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => xtask::lint::run(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint    run the repo-invariant lint pass over the workspace sources
          (see CONTRIBUTING.md for the enforced invariants and the
          `// lint:allow(<rule>): <why>` tag syntax)";
