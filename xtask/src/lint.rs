//! The repo-invariant lint pass (`cargo xtask lint`).
//!
//! A hand-rolled scanner (no external dependencies) that enforces the
//! conventions PRs 2–8 established but nothing checked:
//!
//! | rule id            | invariant                                                        |
//! |--------------------|------------------------------------------------------------------|
//! | `safety-comment`   | every `unsafe` keyword carries a `// SAFETY:` (or `# Safety`) comment immediately above or on the same line |
//! | `io-panic`         | no `.unwrap()` / `.expect(` / `panic!(` on the library load/IO paths (`crates/graph/src/io/`) — they must surface `IoError` |
//! | `fs-choke-point`   | no direct `std::fs` / `File::open` / `File::create` … outside the `io/mod.rs` failpoint choke points, so every byte of file IO can be failure-injected |
//! | `clock-discipline` | no `Instant::now` / `SystemTime::now` outside the approved timing modules (deadline handling in `cancel.rs`, bench, criterion), so `--timeout-checks` determinism can't regress |
//! | `hash-determinism` | no std-hasher `HashMap::new` / `HashSet::new` (& friends) in library crates — use the fixed-seed hasher, sort before emitting, or justify with an allow tag |
//!
//! A finding is silenced by a justification tag on the same line or the
//! line directly above:
//!
//! ```text
//! // lint:allow(hash-determinism): lookup-only registry, iteration order never observed
//! ```
//!
//! The justification text after the `:` is mandatory — a bare tag is itself
//! a violation. Code is separated from comments and string literals by a
//! small Rust lexer, so patterns inside comments, strings and doc examples
//! never fire. `#[cfg(test)] mod … { … }` blocks and files under `tests/`
//! are exempt from every rule except `safety-comment`; lint fixture files
//! under `tests/fixtures/` are skipped entirely.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint finding at `path:line:col`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub path: PathBuf,
    /// 1-based line of the match.
    pub line: usize,
    /// 1-based column (in bytes) of the match.
    pub col: usize,
    /// Stable rule id (the thing `lint:allow(...)` names).
    pub rule: &'static str,
    /// Human explanation including the expected fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to a given file (derived from its repo-relative path
/// by [`rules_for_path`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// `safety-comment`
    pub safety_comment: bool,
    /// `io-panic`
    pub io_panic: bool,
    /// `fs-choke-point`
    pub fs_choke_point: bool,
    /// `clock-discipline`
    pub clock_discipline: bool,
    /// `hash-determinism`
    pub hash_determinism: bool,
}

impl RuleSet {
    fn any(&self) -> bool {
        self.safety_comment
            || self.io_panic
            || self.fs_choke_point
            || self.clock_discipline
            || self.hash_determinism
    }
}

/// Decides which rules apply to `rel` (repo-relative, `/`-separated).
///
/// The approved-location lists live here, in one place:
/// * file IO outside `crates/graph/src/io/mod.rs` (the failpoint choke
///   points) is banned in library crates; `xtask` itself, benches and
///   examples are tools and exempt;
/// * wall-clock reads are approved only in `crates/graph/src/cancel.rs`
///   (cooperative deadlines), `crates/bench/`, examples and the vendored
///   `criterion` shim;
/// * the std-hasher rule covers `crates/*/src` only (vendored shims do not
///   feed ordered output).
pub fn rules_for_path(rel: &str) -> RuleSet {
    if rel.contains("tests/fixtures/") {
        return RuleSet::default();
    }
    let in_tests_dir = rel.contains("/tests/") || rel.starts_with("tests/");
    let lib_src =
        (rel.starts_with("crates/") || rel.starts_with("vendor/") || rel.starts_with("src/"))
            && !in_tests_dir;
    let mut rules = RuleSet {
        // SAFETY discipline applies everywhere, tests included: an unsafe
        // block in a test still needs its argument written down.
        safety_comment: true,
        ..RuleSet::default()
    };
    if !lib_src {
        return rules;
    }
    rules.io_panic = rel.starts_with("crates/graph/src/io/");
    // Bench binaries are operator tools (they write reports and scratch
    // files on explicit request); the choke-point discipline protects the
    // library load/store paths.
    rules.fs_choke_point = rel != "crates/graph/src/io/mod.rs" && !rel.starts_with("crates/bench/");
    rules.clock_discipline = rel != "crates/graph/src/cancel.rs"
        && !rel.starts_with("crates/bench/")
        && !rel.starts_with("vendor/criterion/");
    rules.hash_determinism = rel.starts_with("crates/");
    rules
}

/// Byte classification produced by the lexer.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Class {
    Code,
    Comment,
    Literal,
}

/// Classifies every byte of `src` as code, comment, or string/char
/// literal. Handles line comments, nested block comments, (raw, byte)
/// string literals, char literals and lifetimes.
fn classify(src: &str) -> Vec<Class> {
    let b = src.as_bytes();
    let n = b.len();
    let mut class = vec![Class::Code; n];
    let mut i = 0;
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    class[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < n {
                    if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        class[i] = Class::Comment;
                        class[i + 1] = Class::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        class[i] = Class::Comment;
                        i += 1;
                    }
                }
            }
            b'"' => {
                class[i] = Class::Literal;
                i += 1;
                while i < n {
                    class[i] = Class::Literal;
                    if b[i] == b'\\' && i + 1 < n {
                        class[i + 1] = Class::Literal;
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' => {
                // Raw / byte string starts: r"…", r#"…"#, br"…", b"…", b'…'.
                let mut j = i + 1;
                if b[i] == b'b' && j < n && b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                let is_raw = j > i + 1 || (j < n && b[j] == b'"' && b[i] != b'b');
                if j < n && b[j] == b'"' && (is_raw || b[i] == b'b') {
                    for slot in &mut class[i..=j] {
                        *slot = Class::Literal;
                    }
                    i = j + 1;
                    // Raw strings end at `"` + the same number of `#`s;
                    // plain byte strings honor escapes.
                    let raw = hashes > 0 || b[i - 1] == b'"' && (j > i) || is_raw;
                    while i < n {
                        class[i] = Class::Literal;
                        if !raw && b[i] == b'\\' && i + 1 < n {
                            class[i + 1] = Class::Literal;
                            i += 2;
                            continue;
                        }
                        if b[i] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && i + 1 + h < n && b[i + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                for k in 0..hashes {
                                    class[i + 1 + k] = Class::Literal;
                                }
                                i += 1 + hashes;
                                break;
                            }
                        }
                        i += 1;
                    }
                } else if b[i] == b'b' && i + 1 < n && b[i + 1] == b'\'' {
                    class[i] = Class::Literal;
                    i += 1; // fall through to char-literal handling below
                    continue;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal closes with `'` within
                // a few bytes (or starts with an escape); a lifetime does
                // not close.
                let is_char = if i + 1 < n && b[i + 1] == b'\\' {
                    true
                } else {
                    let mut close = false;
                    let mut k = i + 1;
                    let limit = (i + 6).min(n);
                    while k < limit {
                        if b[k] == b'\'' {
                            close = k > i + 1;
                            break;
                        }
                        if b[k] == b'\n' {
                            break;
                        }
                        k += 1;
                    }
                    close
                };
                if is_char {
                    class[i] = Class::Literal;
                    i += 1;
                    while i < n {
                        class[i] = Class::Literal;
                        if b[i] == b'\\' && i + 1 < n {
                            class[i + 1] = Class::Literal;
                            i += 2;
                        } else if b[i] == b'\'' {
                            i += 1;
                            break;
                        } else {
                            i += 1;
                        }
                    }
                } else {
                    i += 1; // lifetime tick stays code
                }
            }
            _ => i += 1,
        }
    }
    class
}

/// Renders `src` with every byte not of class `keep` replaced by a space
/// (newlines preserved), so substring positions map 1:1 to the original.
fn mask(src: &str, class: &[Class], keep: Class) -> String {
    src.bytes()
        .zip(class)
        .map(|(byte, c)| if byte == b'\n' || *c == keep { byte as char } else { ' ' })
        .collect()
}

/// Byte ranges of `#[cfg(test)] mod … { … }` blocks (test-only code inside
/// a src file), found on the code mask so strings/comments can't confuse
/// the brace matcher.
fn test_mod_ranges(code: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("#[cfg(test)]") {
        let attr_at = from + pos;
        from = attr_at + 1;
        let Some(open_rel) = code[attr_at..].find('{') else { continue };
        let open = attr_at + open_rel;
        // Only treat it as a module if `mod` appears between the attribute
        // and the brace (the attribute may also sit on a single item).
        let between = &code[attr_at..open];
        if !between.contains("mod ") {
            continue;
        }
        let bytes = code.as_bytes();
        let mut depth = 0usize;
        let mut end = code.len();
        for (k, &byte) in bytes.iter().enumerate().skip(open) {
            if byte == b'{' {
                depth += 1;
            } else if byte == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        ranges.push((attr_at, end));
    }
    ranges
}

fn line_col(line_starts: &[usize], offset: usize) -> (usize, usize) {
    let line = line_starts.partition_point(|&s| s <= offset);
    (line, offset - line_starts[line - 1] + 1)
}

fn is_ident_byte(byte: u8) -> bool {
    byte == b'_' || byte.is_ascii_alphanumeric()
}

/// Whole-word occurrences of `word` in the code mask.
fn find_word(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let at = from + pos;
        from = at + 1;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

struct SourceView<'a> {
    lines: Vec<&'a str>,
    code_lines: Vec<String>,
    comment_lines: Vec<String>,
    line_starts: Vec<usize>,
}

impl<'a> SourceView<'a> {
    fn new(src: &'a str, code: &str, comments: &str) -> Self {
        let mut line_starts = vec![0usize];
        for (i, byte) in src.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceView {
            lines: src.lines().collect(),
            code_lines: code.lines().map(str::to_string).collect(),
            comment_lines: comments.lines().map(str::to_string).collect(),
            line_starts,
        }
    }

    fn comment_on(&self, line: usize) -> &str {
        self.comment_lines.get(line - 1).map_or("", String::as_str)
    }

    fn code_on(&self, line: usize) -> &str {
        self.code_lines.get(line - 1).map_or("", String::as_str)
    }

    /// Is a `lint:allow(rule): why` tag present on `line` or in the
    /// contiguous comment block immediately above it?
    fn allowed(&self, line: usize, rule: &str) -> bool {
        let tag = format!("lint:allow({rule}):");
        let has_tag = |l: usize| {
            let comment = self.comment_on(l);
            match comment.find(&tag) {
                // The justification after the colon is mandatory.
                Some(pos) => !comment[pos + tag.len()..].trim().is_empty(),
                None => false,
            }
        };
        if has_tag(line) {
            return true;
        }
        // Walk up through the contiguous comment block above the site (tags
        // often have a wrapped justification), but stop at the first line
        // that contains code so a tag can never apply past another statement.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if !self.code_on(l).trim().is_empty() {
                break;
            }
            if self.comment_on(l).trim().is_empty() {
                break;
            }
            if has_tag(l) {
                return true;
            }
        }
        false
    }
}

/// Scans one file's source and returns its findings. `rel` is the
/// repo-relative path used both for rule selection (see [`rules_for_path`])
/// and in the diagnostics.
pub fn scan_source(rel: &Path, src: &str) -> Vec<Diagnostic> {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let rules = rules_for_path(&rel_str);
    if !rules.any() {
        return Vec::new();
    }
    let class = classify(src);
    let code = mask(src, &class, Class::Code);
    let comments = mask(src, &class, Class::Comment);
    let view = SourceView::new(src, &code, &comments);
    let test_ranges = test_mod_ranges(&code);
    let in_test_mod =
        |offset: usize| test_ranges.iter().any(|&(start, end)| offset >= start && offset < end);

    let mut out = Vec::new();
    let mut push = |offset: usize, rule: &'static str, message: String| {
        let (line, col) = line_col(&view.line_starts, offset);
        if !view.allowed(line, rule) {
            out.push(Diagnostic { path: rel.to_path_buf(), line, col, rule, message });
        }
    };

    if rules.safety_comment {
        for at in find_word(&code, "unsafe") {
            let (line, col) = line_col(&view.line_starts, at);
            if has_safety_comment(&view, line, col) {
                continue;
            }
            push(
                at,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on the same line or directly above \
                 (doc `# Safety` sections also count); write down why this is sound"
                    .to_string(),
            );
        }
    }

    if rules.io_panic {
        for pat in [".unwrap()", ".expect(", "panic!(", "unreachable!("] {
            for at in find_pattern(&code, pat) {
                if in_test_mod(at) {
                    continue;
                }
                push(
                    at,
                    "io-panic",
                    format!(
                        "`{pat}` on a load/IO path; surface the error as `IoError` instead of \
                         panicking (callers rely on failpoint-injected errors propagating)"
                    ),
                );
            }
        }
    }

    if rules.fs_choke_point {
        for pat in [
            "std::fs::",
            "fs::File",
            "File::open",
            "File::create",
            "File::options",
            "OpenOptions",
            "fs::read",
            "fs::write",
            "fs::remove_file",
            "fs::rename",
            "fs::create_dir",
            "fs::metadata",
        ] {
            for at in find_pattern(&code, pat) {
                if in_test_mod(at) {
                    continue;
                }
                let (line, _) = line_col(&view.line_starts, at);
                // Bare imports are fine — only operations are choke-pointed.
                if view.code_on(line).trim_start().starts_with("use ") {
                    continue;
                }
                push(
                    at,
                    "fs-choke-point",
                    format!(
                        "direct file IO (`{pat}`) outside the io/mod.rs choke points; route \
                         through `open_file` / `create_file` / `read_file_bytes` / \
                         `write_bytes_atomic` so failpoints and IO retries apply"
                    ),
                );
            }
        }
    }

    if rules.clock_discipline {
        for pat in ["Instant::now", "SystemTime::now"] {
            for at in find_pattern(&code, pat) {
                if in_test_mod(at) {
                    continue;
                }
                push(
                    at,
                    "clock-discipline",
                    format!(
                        "`{pat}` outside the approved timing modules (cancel.rs deadlines, \
                         bench, criterion); ambient clock reads break `--timeout-checks` \
                         determinism"
                    ),
                );
            }
        }
    }

    if rules.hash_determinism {
        for pat in [
            "HashMap::new",
            "HashSet::new",
            "HashMap::with_capacity(",
            "HashSet::with_capacity(",
            "HashMap::default()",
            "HashSet::default()",
        ] {
            for at in find_pattern(&code, pat) {
                if in_test_mod(at) {
                    continue;
                }
                push(
                    at,
                    "hash-determinism",
                    format!(
                        "`{pat}` uses the randomly-seeded std hasher; iteration order can leak \
                         into output. Use `with_capacity_and_hasher(_, \
                         BuildHasherDefault::default())`, sort before emitting, or justify \
                         with `// lint:allow(hash-determinism): <why>`"
                    ),
                );
            }
        }
    }

    out.sort_by_key(|d| (d.line, d.col, d.rule));
    // Overlapping patterns (`std::fs::File::create` hits both `std::fs::`
    // and `File::create`) collapse to one diagnostic per line and rule.
    out.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    out
}

/// `safety-comment` proximity search: a comment containing "safety" on the
/// `unsafe` line itself, or on the run of comment/attribute/blank lines
/// directly above it (stopping at the first unrelated code line).
fn has_safety_comment(view: &SourceView<'_>, line: usize, col: usize) -> bool {
    let mentions_safety = |l: usize| view.comment_on(l).to_ascii_lowercase().contains("safety");
    if mentions_safety(line) {
        return true;
    }
    // Code on the `unsafe` line before the keyword is fine (e.g. `let x =
    // unsafe { … }`); what matters is the lines above.
    let _ = col;
    let mut l = line;
    for _ in 0..12 {
        if l <= 1 {
            return false;
        }
        l -= 1;
        if mentions_safety(l) {
            return true;
        }
        let code_line = view.code_on(l).trim();
        let attr_only = {
            let raw = view.lines.get(l - 1).copied().unwrap_or("").trim();
            raw.starts_with("#[") || raw.starts_with("#![")
        };
        if !code_line.is_empty() && !attr_only {
            return false;
        }
    }
    false
}

/// All occurrences of `pat` in the code mask (no word boundary — patterns
/// carry their own punctuation).
fn find_pattern(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(pat) {
        out.push(from + pos);
        from = from + pos + 1;
    }
    out
}

/// Walks the workspace sources and returns every finding.
pub fn scan_repo(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for top in ["src", "crates", "vendor", "xtask/src", "examples", "tests"] {
        collect_rs(&root.join(top), root, &mut files)?;
    }
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        out.extend(scan_source(&rel, &src));
    }
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        eprintln!("cargo xtask lint takes no arguments (got {args:?})");
        return ExitCode::from(2);
    }
    // The xtask crate sits at the workspace root's `xtask/` — derive the
    // root from the manifest dir so the pass works from any cwd.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().map(Path::to_path_buf);
    let Some(root) = root else {
        eprintln!("cannot locate the workspace root");
        return ExitCode::FAILURE;
    };
    match scan_repo(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("xtask lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask lint: IO error while scanning: {err}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(src: &str) -> (String, String) {
        let class = classify(src);
        (mask(src, &class, Class::Code), mask(src, &class, Class::Comment))
    }

    #[test]
    fn lexer_separates_comments_and_literals_from_code() {
        let src = "let a = \"x.unwrap()\"; // .unwrap() here\nb.unwrap();\n";
        let (code, comments) = classes(src);
        assert!(!code.contains(".unwrap()") || code.matches(".unwrap()").count() == 1);
        assert!(code.lines().nth(1).unwrap().contains("b.unwrap()"));
        assert!(comments.contains(".unwrap() here"));
        assert!(!code.contains("x.unwrap()"));
    }

    #[test]
    fn lexer_handles_nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner unsafe */ still comment */ code();\nlet r = r#\"panic!(\"no\")\"#;\n";
        let (code, _) = classes(src);
        assert!(!code.contains("unsafe"));
        assert!(code.contains("code()"));
        assert!(!code.contains("panic!("));
    }

    #[test]
    fn lexer_distinguishes_char_literals_from_lifetimes() {
        let src = "fn f<'a>(x: &'a u8) -> char { '\"' }\nlet q = 'y';\n";
        let (code, _) = classes(src);
        // The double-quote inside the char literal must not open a string:
        // `let q` on the next line has to stay classified as code.
        assert!(code.contains("let q"));
        assert!(code.contains("fn f<'a>"));
    }

    #[test]
    fn test_mod_ranges_cover_the_braced_block_only() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() { y.unwrap(); }\n";
        let class = classify(src);
        let code = mask(src, &class, Class::Code);
        let ranges = test_mod_ranges(&code);
        assert_eq!(ranges.len(), 1);
        let (start, end) = ranges[0];
        let inside = src.find("x.unwrap").unwrap();
        let outside = src.find("y.unwrap").unwrap();
        assert!(inside >= start && inside < end);
        assert!(!(outside >= start && outside < end));
    }

    #[test]
    fn cfg_test_on_a_single_item_is_not_a_module_range() {
        let src = "#[cfg(test)]\nfn helper() { x.unwrap(); }\n";
        let class = classify(src);
        let code = mask(src, &class, Class::Code);
        assert!(test_mod_ranges(&code).is_empty());
    }

    #[test]
    fn find_word_respects_identifier_boundaries() {
        let code = "unsafe fn f() {} // x\nlet not_unsafe_here = unsafe2;\n";
        assert_eq!(find_word(code, "unsafe").len(), 1);
    }

    #[test]
    fn allow_tag_requires_a_justification() {
        let src = "// lint:allow(io-panic):\nx.unwrap();\n";
        let diags = scan_source(Path::new("crates/graph/src/io/f.rs"), src);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        let src = "// lint:allow(io-panic): parser precondition documented above\nx.unwrap();\n";
        let diags = scan_source(Path::new("crates/graph/src/io/f.rs"), src);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn allow_tag_does_not_reach_past_intervening_code() {
        let src =
            "// lint:allow(io-panic): justified for the line below only\ny.parse();\nx.unwrap();\n";
        let diags = scan_source(Path::new("crates/graph/src/io/f.rs"), src);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].line, 3);
    }
}
