// Lint-scanner fixture for the `io-panic` rule. Scanned by
// ../lint_fixtures.rs under a synthetic `crates/graph/src/io/` path;
// line numbers are asserted exactly, so keep them stable.

pub fn load(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap();
    let second = bytes.get(1).expect("short input");
    if bytes.len() > 9 {
        panic!("too long");
    }
    match first {
        0 => unreachable!("zero is filtered"),
        _ => u32::from(*first) + u32::from(*second),
    }
}

pub fn justified(bytes: &[u8]) -> u8 {
    // lint:allow(io-panic): fixture — this unwrap is justified here.
    *bytes.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_mod_is_exempt() {
        assert_eq!(super::load(&[1, 2]), 3);
        super::justified(&[0, 0]).checked_add(1).unwrap();
    }
}
