// Lint-scanner fixture for the `safety-comment` rule. Line numbers are
// asserted exactly by ../lint_fixtures.rs — keep them stable.

pub fn undocumented(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

pub fn documented(ptr: *const u32) -> u32 {
    // SAFETY: fixture — the caller guarantees `ptr` is valid and aligned.
    unsafe { *ptr }
}

pub fn same_line(ptr: *const u32) -> u32 {
    unsafe { *ptr } // SAFETY: fixture — same-line comments count too.
}

/// Reads through `ptr`.
///
/// # Safety
///
/// `ptr` must be valid for reads.
#[inline]
pub unsafe fn doc_section(ptr: *const u32) -> u32 {
    *ptr
}

pub fn mentioned_in_comment_only() {
    // The word unsafe in a comment is not flagged.
}
