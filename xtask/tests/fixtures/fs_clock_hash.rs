// Lint-scanner fixture for the fs-choke-point, clock-discipline and
// hash-determinism rules. Scanned under a synthetic `crates/graph/src/`
// path; line numbers are asserted exactly — keep them stable.

use std::collections::HashMap;
use std::fs::File; // `use` lines are exempt from fs-choke-point

pub fn direct_fs(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    let _meta = std::fs::metadata(path)?;
    let _file = File::open(path)?;
    std::fs::read(path)
}

pub fn ambient_clock() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn wall_clock() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn seeded_by_chance() -> HashMap<u32, u32> {
    HashMap::new()
}

pub fn justified() -> HashMap<u32, u32> {
    // lint:allow(hash-determinism): fixture — lookup-only table; its
    // iteration order is never observed by any output path.
    HashMap::new()
}

pub fn bare_tag() -> HashMap<u32, u32> {
    // lint:allow(hash-determinism):
    HashMap::new()
}

pub fn wrong_rule_tag() -> std::time::Instant {
    // lint:allow(fs-choke-point): fixture — tag names a different rule.
    std::time::Instant::now()
}

pub fn not_code() {
    let _s = "std::fs::read and Instant::now() inside a string literal";
    // std::fs::read and Instant::now() inside a comment.
}
