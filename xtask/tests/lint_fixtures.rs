//! Fixture tests for the repo-lint scanner: each fixture under
//! `tests/fixtures/` is scanned under a synthetic repo-relative path and
//! the resulting diagnostics are compared against the exact `(line, rule)`
//! set the fixture was written to produce. The fixtures directory itself is
//! skipped by `scan_repo`, so these deliberately-violating files never leak
//! into the real lint pass.

use std::path::Path;

use xtask::lint::{rules_for_path, scan_repo, scan_source, Diagnostic};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

/// The `(line, rule)` pairs of `diags`, in scan order.
fn findings(diags: &[Diagnostic]) -> Vec<(usize, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn io_panic_fixture_yields_exact_lines() {
    let diags = scan_source(Path::new("crates/graph/src/io/fixture.rs"), &fixture("io_panic.rs"));
    assert_eq!(
        findings(&diags),
        vec![(6, "io-panic"), (7, "io-panic"), (9, "io-panic"), (12, "io-panic")],
        "full diagnostics: {diags:#?}"
    );
}

#[test]
fn io_panic_rule_is_scoped_to_the_io_tree() {
    // The same source outside `crates/graph/src/io/` produces nothing: the
    // panics are legal elsewhere and no other rule matches this fixture.
    let diags = scan_source(Path::new("crates/graph/src/fixture.rs"), &fixture("io_panic.rs"));
    assert_eq!(findings(&diags), vec![], "full diagnostics: {diags:#?}");
}

#[test]
fn safety_fixture_flags_only_the_undocumented_site() {
    let diags = scan_source(Path::new("crates/graph/src/fixture.rs"), &fixture("safety.rs"));
    assert_eq!(findings(&diags), vec![(5, "safety-comment")], "full diagnostics: {diags:#?}");
}

#[test]
fn safety_rule_applies_even_under_tests() {
    // Every other rule is relaxed for test code; SAFETY discipline is not.
    let diags = scan_source(Path::new("crates/graph/tests/fixture.rs"), &fixture("safety.rs"));
    assert_eq!(findings(&diags), vec![(5, "safety-comment")], "full diagnostics: {diags:#?}");
}

#[test]
fn fs_clock_hash_fixture_yields_exact_lines() {
    let diags = scan_source(Path::new("crates/graph/src/fixture.rs"), &fixture("fs_clock_hash.rs"));
    assert_eq!(
        findings(&diags),
        vec![
            (9, "fs-choke-point"),
            (10, "fs-choke-point"),
            (11, "fs-choke-point"),
            (15, "clock-discipline"),
            (19, "clock-discipline"),
            (23, "hash-determinism"),
            (34, "hash-determinism"),
            (39, "clock-discipline"),
        ],
        "full diagnostics: {diags:#?}"
    );
}

#[test]
fn overlapping_fs_patterns_collapse_to_one_diagnostic() {
    // `std::fs::metadata(` matches both the `std::fs::` and `fs::metadata`
    // patterns; the scanner must report the line once.
    let diags = scan_source(Path::new("crates/graph/src/fixture.rs"), &fixture("fs_clock_hash.rs"));
    let on_line_9: Vec<_> = diags.iter().filter(|d| d.line == 9).collect();
    assert_eq!(on_line_9.len(), 1, "full diagnostics: {diags:#?}");
}

#[test]
fn diagnostics_render_as_path_line_col_rule() {
    let diags = scan_source(Path::new("crates/graph/src/fixture.rs"), &fixture("fs_clock_hash.rs"));
    let first = diags.first().expect("fixture produces diagnostics");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("crates/graph/src/fixture.rs:9:")
            && rendered.contains("[fs-choke-point]"),
        "unexpected rendering: {rendered}"
    );
}

#[test]
fn fixture_paths_are_exempt_from_every_rule() {
    // Scanning a fixture under its real path produces nothing — that is how
    // the violating files in tests/fixtures/ stay out of `cargo xtask lint`.
    for name in ["io_panic.rs", "safety.rs", "fs_clock_hash.rs"] {
        let rel = format!("xtask/tests/fixtures/{name}");
        let diags = scan_source(Path::new(&rel), &fixture(name));
        assert_eq!(findings(&diags), vec![], "{name}: {diags:#?}");
    }
}

#[test]
fn rule_scoping_matches_the_approved_locations() {
    let choke = rules_for_path("crates/graph/src/io/mod.rs");
    assert!(!choke.fs_choke_point, "the choke point itself may touch std::fs");
    assert!(choke.io_panic, "but it is still on the IO no-panic path");

    let cancel = rules_for_path("crates/graph/src/cancel.rs");
    assert!(!cancel.clock_discipline, "deadline handling may read the clock");
    assert!(cancel.fs_choke_point);

    let bench = rules_for_path("crates/bench/src/bin/run.rs");
    assert!(!bench.fs_choke_point, "bench binaries are operator tools");
    assert!(!bench.clock_discipline);

    let vendored = rules_for_path("vendor/rayon/src/pool.rs");
    assert!(vendored.safety_comment);
    assert!(vendored.fs_choke_point);
    assert!(!vendored.hash_determinism, "hash rule covers crates/ only");

    let test_file = rules_for_path("crates/graph/tests/loom.rs");
    assert!(test_file.safety_comment);
    assert!(!test_file.fs_choke_point);
    assert!(!test_file.clock_discipline);
}

#[test]
fn repository_is_lint_clean() {
    // The same invariant CI enforces via `cargo xtask lint`, kept here so a
    // plain `cargo test` catches regressions too.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().to_path_buf();
    let diags = scan_repo(&root).unwrap();
    assert!(diags.is_empty(), "repo lint violations:\n{:#?}", diags);
}
