//! Running the Δ-growing step as literal MapReduce rounds.
//!
//! The production code path uses a shared-memory parallel loop and only
//! *charges* the MapReduce cost model; this example executes the same growth
//! on the simulated key-value engine of `cldiam-mr` (hash-partitioned
//! machines, per-key reducers) and prints the per-round shuffle statistics, to
//! make the paper's "O(1) rounds per growing step" mapping concrete.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example mapreduce_rounds
//! ```

use cldiam::gen::{mesh, WeightModel};
use cldiam::prelude::*;
use cldiam_core::{mr_impl::mr_partial_growth, GrowState};
use cldiam_mr::MrEngine;

fn main() {
    let graph = mesh(48, WeightModel::UniformUnit, 21);
    println!("mesh(48): {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let engine = MrEngine::new(MrConfig::with_machines(8));
    let mut state = GrowState::new(graph.num_nodes());
    // Four centers spread over the mesh.
    for &c in &[0, 47, 48 * 47, 48 * 48 - 1] {
        state.set_center(c);
    }

    let threshold = 8 * u64::from(cldiam::graph::WEIGHT_SCALE);
    let rounds = mr_partial_growth(&engine, &graph, threshold, threshold, &mut state);
    let covered = state.center.iter().filter(|&&c| c != cldiam_core::NO_CENTER).count();

    println!("\ngrowth finished after {rounds} MapReduce rounds; {covered} nodes covered");
    println!("aggregate cost: {}", engine.metrics());

    println!("\nper-round shuffle statistics (first 10 rounds):");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>10}",
        "round", "input pairs", "output pairs", "peak machine", "ML ok?"
    );
    for (i, round) in engine.history().iter().enumerate().take(10) {
        let peak = round.machine_loads.iter().map(|l| l.items).max().unwrap_or(0);
        println!(
            "{:>6} {:>12} {:>12} {:>14} {:>10}",
            i + 1,
            round.input_items,
            round.output_items,
            peak,
            if round.local_memory_exceeded { "exceeded" } else { "yes" }
        );
    }
}
