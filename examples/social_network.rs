//! Social-network workload: low-diameter power-law graphs (the livejournal /
//! twitter proxies), born unweighted and assigned uniform `(0, 1]` weights.
//!
//! Run with (optionally passing the R-MAT scale and a seed):
//!
//! ```text
//! cargo run --release --example social_network -- 14 3
//! ```

use std::time::Instant;

use cldiam::gen::{rmat, RmatParams, WeightModel};
use cldiam::graph::{largest_component, stats::GraphStats};
use cldiam::prelude::*;
use cldiam::sssp::{delta_stepping, diameter_lower_bound, suggest_delta};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let raw = rmat(RmatParams::paper(scale), WeightModel::UniformUnit, seed);
    let (graph, _) = largest_component(&raw);
    let stats = GraphStats::compute(&graph);
    println!(
        "R-MAT({scale}) largest component: {} nodes, {} edges, max degree {}",
        stats.nodes, stats.edges, stats.max_degree
    );

    let lower = diameter_lower_bound(&graph, 4, seed);
    println!("diameter lower bound: {:.4}", lower as f64 / f64::from(cldiam::graph::WEIGHT_SCALE));

    let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), 1_000);
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    let started = Instant::now();
    let estimate = approximate_diameter(&graph, &config);
    let cl_time = started.elapsed();
    println!("\nCL-DIAM (tau = {tau})");
    println!(
        "  estimate : {:.4} (ratio {:.3})",
        estimate.upper_bound as f64 / f64::from(cldiam::graph::WEIGHT_SCALE),
        estimate.ratio_against(lower)
    );
    println!("  clusters : {}", estimate.num_clusters);
    println!("  rounds   : {}", estimate.metrics.rounds);
    println!("  work     : {}", estimate.metrics.work());
    println!("  time     : {cl_time:?}");

    let delta = suggest_delta(&graph);
    let started = Instant::now();
    let outcome = delta_stepping(&graph, 0, delta, None);
    let ds_time = started.elapsed();
    println!("\nΔ-stepping baseline (Δ = {delta})");
    println!(
        "  estimate : {:.4} (ratio {:.3})",
        outcome.eccentricity().saturating_mul(2) as f64 / f64::from(cldiam::graph::WEIGHT_SCALE),
        outcome.eccentricity().saturating_mul(2) as f64 / lower.max(1) as f64
    );
    println!("  rounds   : {}", outcome.phases);
    println!("  work     : {}", outcome.work());
    println!("  time     : {ds_time:?}");
}
