//! Quickstart: approximate the weighted diameter of a small graph.
//!
//! Builds a weighted graph from an inline edge list, runs the cluster-based
//! diameter approximation (`CL-DIAM`) and compares the estimate with the
//! exact diameter and with the SSSP-based 2-approximation baseline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cldiam::graph::edgelist::parse_edge_list;
use cldiam::prelude::*;
use cldiam::sssp::{exact_diameter, sssp_diameter_upper_bound};

fn main() {
    // A small weighted graph: two communities joined by a long bridge.
    let graph = parse_edge_list(
        "\
        0 1 3\n 1 2 4\n 2 0 5\n 1 3 2\n 3 4 6\n 4 5 1\n 5 3 2\n\
        4 6 40\n\
        6 7 3\n 7 8 2\n 8 6 4\n 8 9 5\n 9 10 1\n 10 6 2\n",
    )
    .expect("inline edge list is well formed");

    println!("graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    // CL-DIAM: decompose into clusters, build the quotient graph, estimate.
    let config = ClusterConfig::default().with_tau(2).with_seed(42);
    let estimate = approximate_diameter(&graph, &config);
    println!("\nCL-DIAM estimate");
    println!("  upper bound          : {}", estimate.upper_bound);
    println!("  quotient diameter    : {}", estimate.quotient_diameter);
    println!("  clustering radius    : {}", estimate.radius);
    println!("  clusters             : {}", estimate.num_clusters);
    println!("  growing steps        : {}", estimate.growing_steps);
    println!("  MR rounds            : {}", estimate.metrics.rounds);
    println!("  work (updates+msgs)  : {}", estimate.metrics.work());

    // Baselines: exact diameter (feasible on a toy graph) and the SSSP bound.
    let exact = exact_diameter(&graph);
    let sssp_bound = sssp_diameter_upper_bound(&graph, 0);
    let lower = diameter_lower_bound(&graph, 4, 1);
    println!("\nreference values");
    println!("  exact diameter       : {exact}");
    println!("  SSSP 2-approximation : {sssp_bound}");
    println!("  sweep lower bound    : {lower}");
    println!(
        "\napproximation ratio: {:.4} (vs exact), {:.4} (vs lower bound)",
        estimate.ratio_against(exact),
        estimate.ratio_against(lower)
    );

    assert!(estimate.upper_bound >= exact, "CL-DIAM must never underestimate");
}
