//! The §5 initial-`Δ` experiment.
//!
//! On a mesh whose edges weigh 1 with probability 0.1 and `10⁻⁶` otherwise,
//! the graph can be covered by clusters that avoid heavy edges entirely.
//! Starting the threshold at the minimum edge weight lets `CLUSTER` tune
//! itself to that regime (approximation ≈ 1.0001 in the paper); starting it at
//! the graph diameter disables the self-tuning and inflates the estimate
//! (≈ 2.5× in the paper). The average-weight rule used by every other
//! experiment sits between the two.
//!
//! Run with (optionally passing the mesh side):
//!
//! ```text
//! cargo run --release --example delta_tuning -- 128
//! ```

use cldiam::gen::{mesh, WeightModel};
use cldiam::prelude::*;
use cldiam::sssp::diameter_lower_bound;
use cldiam_core::InitialDelta;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(128);
    let seed = 11;
    let graph = mesh(side, WeightModel::paper_bimodal(), seed);
    println!(
        "mesh({side}) with bimodal weights: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let reference = diameter_lower_bound(&graph, 6, seed);
    println!("diameter lower bound: {reference}");

    let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), 1_000);
    let policies = [
        ("min weight (pseudocode default)", InitialDelta::MinWeight),
        ("average weight (paper's practical rule)", InitialDelta::AvgWeight),
        ("graph diameter (no self-tuning)", InitialDelta::Fixed(reference)),
    ];

    println!(
        "\n{:<42} {:>12} {:>10} {:>8} {:>10}",
        "initial Δ policy", "estimate", "ratio", "rounds", "Δ_end"
    );
    for (name, policy) in policies {
        let config =
            ClusterConfig::default().with_tau(tau).with_seed(seed).with_initial_delta(policy);
        let driver = ClDiam::new(config);
        let clustering = driver.decompose(&graph);
        let estimate = driver.estimate_from_clustering(&graph, &clustering);
        println!(
            "{name:<42} {:>12} {:>10.4} {:>8} {:>10}",
            estimate.upper_bound,
            estimate.ratio_against(reference),
            estimate.metrics.rounds,
            clustering.delta_end,
        );
    }
    println!("\nSmaller initial Δ keeps the clusters free of heavy edges and the ratio near 1;");
    println!(
        "starting at the diameter merges everything across heavy edges and inflates the bound."
    );
}
