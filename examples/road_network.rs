//! Road-network workload: the paper's motivating scenario for geographic
//! information systems.
//!
//! Generates a synthetic road network (the proxy for roads-USA / roads-CAL),
//! extracts its largest connected component, and compares `CL-DIAM` against
//! the Δ-stepping SSSP baseline on the three metrics of Table 2: diameter
//! approximation, number of rounds, and work.
//!
//! Run with (optionally passing the lattice side and a seed):
//!
//! ```text
//! cargo run --release --example road_network -- 60 7
//! ```

use std::time::Instant;

use cldiam::gen::road_network;
use cldiam::graph::largest_component;
use cldiam::prelude::*;
use cldiam::sssp::{delta_stepping, diameter_lower_bound, suggest_delta};
use cldiam_mr::CostTracker;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let raw = road_network(side, side, seed);
    let (graph, _) = largest_component(&raw);
    println!(
        "road network {side}x{side}: {} nodes, {} edges (largest component)",
        graph.num_nodes(),
        graph.num_edges()
    );

    // Reference: lower bound by iterated farthest-node sweeps (as in Table 2).
    let lower = diameter_lower_bound(&graph, 4, seed);
    println!("diameter lower bound (4 sweeps): {lower}");

    // CL-DIAM.
    let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), 1_000);
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    let started = Instant::now();
    let estimate = approximate_diameter(&graph, &config);
    let cl_time = started.elapsed();
    println!("\nCL-DIAM (tau = {tau})");
    println!(
        "  estimate   : {} (ratio {:.3})",
        estimate.upper_bound,
        estimate.ratio_against(lower)
    );
    println!("  clusters   : {}", estimate.num_clusters);
    println!("  rounds     : {}", estimate.metrics.rounds);
    println!("  work       : {}", estimate.metrics.work());
    println!("  time       : {cl_time:?}");

    // Δ-stepping baseline from a fixed source: 2 × eccentricity.
    let delta = suggest_delta(&graph);
    let tracker = CostTracker::new();
    let started = Instant::now();
    let outcome = delta_stepping(&graph, 0, delta, Some(&tracker));
    let ds_time = started.elapsed();
    let ds_estimate = outcome.eccentricity().saturating_mul(2);
    println!("\nΔ-stepping baseline (Δ = {delta})");
    println!(
        "  estimate   : {ds_estimate} (ratio {:.3})",
        ds_estimate as f64 / lower.max(1) as f64
    );
    println!("  rounds     : {}", outcome.phases);
    println!("  work       : {}", outcome.work());
    println!("  time       : {ds_time:?}");

    println!(
        "\nround reduction: {:.1}x, work reduction: {:.1}x",
        outcome.phases as f64 / estimate.metrics.rounds.max(1) as f64,
        outcome.work() as f64 / estimate.metrics.work().max(1) as f64
    );
}
