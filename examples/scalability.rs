//! Scalability sweep (the Figure 4 experiment): run `CL-DIAM` on the same
//! graph while varying the number of machines — real worker threads, one
//! dedicated pool per configuration — and report the running time and the
//! speedup over the single-threaded run. Speedups saturate at the physical
//! core count of the host.
//!
//! Run with (optionally passing the R-MAT scale and the mesh side):
//!
//! ```text
//! cargo run --release --example scalability -- 14 100
//! ```

use std::time::Instant;

use cldiam::gen::{mesh, rmat, RmatParams, WeightModel};
use cldiam::graph::largest_component;
use cldiam::prelude::*;

fn run_with_machines(
    graph: &cldiam::graph::Graph,
    machines: usize,
    seed: u64,
) -> std::time::Duration {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(machines).build().expect("thread pool");
    let tau = ClusterConfig::tau_for_quotient_target(graph.num_nodes(), 1_000);
    let config = ClusterConfig::default().with_tau(tau).with_seed(seed);
    let started = Instant::now();
    let estimate = pool.install(|| approximate_diameter(graph, &config));
    let elapsed = started.elapsed();
    assert!(estimate.upper_bound > 0);
    elapsed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(14);
    let mesh_side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed = 5;

    let (social, _) =
        largest_component(&rmat(RmatParams::paper(scale), WeightModel::UniformUnit, seed));
    let grid = mesh(mesh_side, WeightModel::UniformUnit, seed);

    println!(
        "{:<12} {:>16} {:>16}",
        "machines",
        format!("R-MAT({scale})"),
        format!("mesh({mesh_side})")
    );
    let mut baseline: Option<(f64, f64)> = None;
    for machines in [1usize, 2, 4, 8, 16] {
        let t_social = run_with_machines(&social, machines, seed).as_secs_f64();
        let t_mesh = run_with_machines(&grid, machines, seed).as_secs_f64();
        let (b_social, b_mesh) = *baseline.get_or_insert((t_social, t_mesh));
        println!(
            "{machines:<12} {:>11.3}s x{:<4.2} {:>10.3}s x{:<4.2}",
            t_social,
            b_social / t_social,
            t_mesh,
            b_mesh / t_mesh
        );
    }
    println!("\n(x factors are speedups relative to the single-machine run)");
}
