//! Load a real graph file and approximate its diameter — the file→estimate
//! pipeline of the paper's Table 2 experiments.
//!
//! ```text
//! cargo run --release --example from_file [PATH]
//! ```
//!
//! Defaults to the bundled DIMACS fixture. Any supported format works
//! (DIMACS `.gr`, SNAP/TSV edge list, binary `.cldg` snapshot); the format
//! is auto-detected from the content.

use cldiam::graph::{largest_component, load_graph};
use cldiam::prelude::*;
use cldiam::sssp::diameter_lower_bound;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/roads.gr").to_string());
    let raw = match load_graph(&path) {
        Ok(graph) => graph,
        Err(e) => {
            eprintln!("cannot load {path:?}: {e}");
            std::process::exit(1);
        }
    };
    println!("loaded {path}: {} nodes, {} edges", raw.num_nodes(), raw.num_edges());

    // Real datasets are disconnected; the paper runs every algorithm on the
    // largest connected component.
    let (graph, _) = largest_component(&raw);
    println!("largest component: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let config = ClusterConfig::default().with_tau(16).with_seed(7);
    let estimate = approximate_diameter(&graph, &config);
    let lower = diameter_lower_bound(&graph, 4, 7);
    println!(
        "diameter ∈ [{lower}, {}]  ({} clusters, radius {}, {} MapReduce rounds)",
        estimate.upper_bound, estimate.num_clusters, estimate.radius, estimate.metrics.rounds
    );
    assert!(estimate.upper_bound >= lower);
}
