//! # cldiam — cluster-based diameter approximation of massive weighted graphs
//!
//! Umbrella crate re-exporting the full workspace: a from-scratch Rust
//! reproduction of *"A Practical Parallel Algorithm for Diameter Approximation
//! of Massive Weighted Graphs"* (Ceccarello, Pietracaprina, Pucci, Upfal,
//! IPPS 2016), including every substrate the paper depends on.
//!
//! ## Crates
//!
//! * [`graph`] — weighted undirected CSR graphs, builders, components, I/O.
//! * [`gen`] — synthetic graph generators (R-MAT, mesh, road networks, …).
//! * [`mr`] — a MapReduce-like round engine and the paper's cost model
//!   (rounds, messages, node updates).
//! * [`sssp`] — Dijkstra, Bellman-Ford and the Δ-stepping baseline, plus
//!   diameter upper/lower bounds based on SSSP.
//! * [`core`] — the paper's contribution: `CLUSTER`, `CLUSTER2`, quotient
//!   graphs and the `CL-DIAM` diameter approximation driver.
//!
//! ## Quickstart
//!
//! ```
//! use cldiam::prelude::*;
//!
//! // A 32x32 mesh with uniform random weights in (0, 1].
//! let graph = cldiam::gen::mesh(32, WeightModel::UniformUnit, 42);
//! let config = ClusterConfig::default().with_tau(16).with_seed(7);
//! let estimate = approximate_diameter(&graph, &config);
//! let lower = cldiam::sssp::diameter_lower_bound(&graph, 4, 7);
//! assert!(estimate.upper_bound >= lower);
//! ```

#![forbid(unsafe_code)]

pub use cldiam_core as core;
pub use cldiam_gen as gen;
pub use cldiam_graph as graph;
pub use cldiam_mr as mr;
pub use cldiam_sssp as sssp;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cldiam_core::{
        approximate_diameter, ClDiam, ClusterConfig, Clustering, DiameterEstimate, InitialDelta,
    };
    pub use cldiam_gen::WeightModel;
    pub use cldiam_graph::{Dist, Graph, GraphBuilder, NodeId, Weight};
    pub use cldiam_mr::{CostMetrics, MrConfig};
    pub use cldiam_sssp::{delta_stepping, diameter_lower_bound, dijkstra};
}
